#include "classify/detector_bank.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/edf.hpp"
#include "util/check.hpp"

namespace linkpad::classify {

// ------------------------------------------------------------------ Detector

Detector::Detector(DetectorSpec spec, std::size_t num_classes)
    : spec_(std::move(spec)),
      num_classes_(num_classes),
      bin_width_(spec_.adversary.entropy_bin_width),
      confusion_(num_classes) {
  LINKPAD_EXPECTS(num_classes >= 2);
  LINKPAD_EXPECTS(spec_.adversary.window_size >= 2);
  // Mirror EdfClassifier::train's floor so a bad knob fails at
  // construction, not deep inside train() with an internal-state message.
  if (is_edf()) LINKPAD_EXPECTS(spec_.edf_max_reference >= 16);
  if (!needs_bin_width()) prepare();
}

std::string Detector::name() const {
  if (is_edf()) {
    return spec_.edf == EdfDistance::kKolmogorovSmirnov ? "EDF nearest (KS)"
                                                        : "EDF nearest (CvM)";
  }
  return feature_name(spec_.adversary.feature);
}

bool Detector::needs_bin_width() const {
  return !is_edf() &&
         spec_.adversary.feature == FeatureKind::kSampleEntropy &&
         bin_width_ <= 0.0;
}

void Detector::set_bin_width(double bin_width) {
  LINKPAD_EXPECTS(bin_width > 0.0);
  LINKPAD_EXPECTS(!prepared_);
  bin_width_ = bin_width;
  prepare();
}

void Detector::prepare() {
  LINKPAD_EXPECTS(!prepared_);
  if (is_edf()) {
    window_buffers_.resize(num_classes_);
    for (auto& buffer : window_buffers_) {
      buffer.reserve(spec_.adversary.window_size);
    }
    references_.resize(num_classes_);
  } else {
    AccumulatorOptions options;
    options.entropy_bin_width = bin_width_;
    options.entropy_bias = spec_.adversary.entropy_bias;
    options.quantile_mode = spec_.quantile_mode;
    accumulators_.reserve(num_classes_);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      accumulators_.push_back(
          make_window_accumulator(spec_.adversary.feature, options));
    }
    training_features_.resize(num_classes_);
  }
  prepared_ = true;
}

void Detector::thin_reference(std::vector<double>& reference) const {
  thin_reference_sorted(reference, spec_.edf_max_reference);
}

void Detector::complete_window(std::size_t class_index, bool testing) {
  if (is_edf()) {
    if (testing) {
      classify_edf_window(class_index);
    } else {
      auto& reference = references_[class_index];
      auto& window = window_buffers_[class_index];
      reference.insert(reference.end(), window.begin(), window.end());
      // Progressive thinning bounds training memory at ~2x the reference
      // cap. Each thin resamples the sorted prefix, so the final reference
      // approximates (not reproduces) a full-sort thin — documented
      // tolerance of the streaming EDF detector.
      if (reference.size() >= 2 * spec_.edf_max_reference) {
        thin_reference(reference);
      }
    }
    window_buffers_[class_index].clear();
    return;
  }
  auto& acc = *accumulators_[class_index];
  const double feature = acc.value();
  if (testing) {
    confusion_.add(static_cast<ClassLabel>(class_index),
                   classifier_->classify(feature));
  } else {
    training_features_[class_index].push_back(feature);
  }
  acc.reset();
}

void Detector::classify_edf_window(std::size_t true_class) {
  // The buffer is cleared right after this call, so sort it in place — no
  // per-window allocation on the EDF hot path.
  auto& sorted = window_buffers_[true_class];
  std::sort(sorted.begin(), sorted.end());
  ClassLabel best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < references_.size(); ++c) {
    const double d = spec_.edf == EdfDistance::kKolmogorovSmirnov
                         ? stats::ks_distance_sorted(sorted, references_[c])
                         : stats::cvm_distance_sorted(sorted, references_[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<ClassLabel>(c);
    }
  }
  confusion_.add(static_cast<ClassLabel>(true_class), best);
}

void Detector::feed(std::size_t class_index, std::span<const double> batch,
                    bool testing) {
  LINKPAD_EXPECTS(prepared_);
  LINKPAD_EXPECTS(class_index < num_classes_);
  const std::size_t n = spec_.adversary.window_size;
  if (is_edf()) {
    auto& window = window_buffers_[class_index];
    for (double x : batch) {
      window.push_back(x);
      if (window.size() == n) complete_window(class_index, testing);
    }
  } else {
    auto& acc = *accumulators_[class_index];
    for (double x : batch) {
      acc.add(x);
      if (acc.count() == n) complete_window(class_index, testing);
    }
  }
}

void Detector::consume_training(std::size_t class_index,
                                std::span<const double> batch) {
  LINKPAD_EXPECTS(!trained_);
  feed(class_index, batch, /*testing=*/false);
}

void Detector::train(const std::vector<double>& priors) {
  LINKPAD_EXPECTS(prepared_ && !trained_);
  LINKPAD_EXPECTS(priors.size() == num_classes_);
  priors_ = priors;
  if (is_edf()) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      window_buffers_[c].clear();  // drop the partial trailing window
      LINKPAD_EXPECTS(references_[c].size() >= 16);
      thin_reference(references_[c]);
    }
  } else {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      accumulators_[c]->reset();  // drop the partial trailing window
      LINKPAD_EXPECTS(training_features_[c].size() >= 2);
    }
    classifier_ =
        BayesClassifier::train(training_features_, priors_,
                               spec_.adversary.density, spec_.adversary.bandwidth,
                               spec_.adversary.fixed_bandwidth);
  }
  trained_ = true;
}

void Detector::consume_test(std::size_t true_class,
                            std::span<const double> batch) {
  LINKPAD_EXPECTS(trained_);
  feed(true_class, batch, /*testing=*/true);
}

double Detector::detection_rate() const {
  LINKPAD_EXPECTS(trained_);
  return confusion_.detection_rate(priors_);
}

const BayesClassifier& Detector::classifier() const {
  LINKPAD_EXPECTS(classifier_.has_value());
  return *classifier_;
}

// -------------------------------------------------------------- DetectorBank

DetectorBank::DetectorBank(std::vector<DetectorSpec> specs,
                           std::size_t num_classes)
    : num_classes_(num_classes) {
  LINKPAD_EXPECTS(!specs.empty());
  LINKPAD_EXPECTS(num_classes >= 2);
  detectors_.reserve(specs.size());
  for (auto& spec : specs) {
    detectors_.push_back(
        std::make_unique<Detector>(std::move(spec), num_classes));
  }
}

namespace {

std::vector<DetectorSpec> specs_for_features(
    const AdversaryConfig& base, const std::vector<FeatureKind>& features) {
  std::vector<DetectorSpec> specs;
  specs.reserve(features.size());
  for (const auto kind : features) {
    DetectorSpec spec;
    spec.adversary = base;
    spec.adversary.feature = kind;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

DetectorBank::DetectorBank(const AdversaryConfig& base,
                           const std::vector<FeatureKind>& features,
                           std::size_t num_classes)
    : DetectorBank(specs_for_features(base, features), num_classes) {}

bool DetectorBank::needs_prepass() const {
  if (prepass_finished_) return false;
  return std::any_of(detectors_.begin(), detectors_.end(),
                     [](const auto& d) { return d->needs_bin_width(); });
}

void DetectorBank::consume_prepass(std::span<const double> batch) {
  LINKPAD_EXPECTS(!prepass_finished_);
  for (double x : batch) prepass_pooled_.add(x);
}

void DetectorBank::finish_prepass() {
  LINKPAD_EXPECTS(!prepass_finished_);
  LINKPAD_EXPECTS(prepass_pooled_.count() >= 2);
  for (auto& detector : detectors_) {
    if (!detector->needs_bin_width()) continue;
    // Scott's histogram rule at the detector's window size — the exact
    // selection Adversary::train performs on pooled training data.
    const double n = static_cast<double>(detector->spec().adversary.window_size);
    const double width =
        3.49 * prepass_pooled_.stddev() * std::pow(n, -1.0 / 3.0);
    LINKPAD_ENSURES(width > 0.0);
    detector->set_bin_width(width);
  }
  prepass_finished_ = true;
}

void DetectorBank::consume_training(std::size_t class_index,
                                    std::span<const double> batch) {
  LINKPAD_EXPECTS(!needs_prepass());
  for (auto& detector : detectors_) {
    detector->consume_training(class_index, batch);
  }
}

void DetectorBank::train(std::vector<double> priors) {
  if (priors.empty()) {
    priors.assign(num_classes_, 1.0 / static_cast<double>(num_classes_));
  }
  LINKPAD_EXPECTS(priors.size() == num_classes_);
  for (auto& detector : detectors_) detector->train(priors);
}

bool DetectorBank::trained() const {
  return std::all_of(detectors_.begin(), detectors_.end(),
                     [](const auto& d) { return d->trained(); });
}

void DetectorBank::consume_test(std::size_t true_class,
                                std::span<const double> batch) {
  for (auto& detector : detectors_) detector->consume_test(true_class, batch);
}

const Detector& DetectorBank::detector(std::size_t i) const {
  LINKPAD_EXPECTS(i < detectors_.size());
  return *detectors_[i];
}

}  // namespace linkpad::classify
