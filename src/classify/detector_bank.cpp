#include "classify/detector_bank.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/edf.hpp"
#include "util/check.hpp"

namespace linkpad::classify {

// ------------------------------------------------------------------ Detector

Detector::Detector(DetectorSpec spec, std::size_t num_classes)
    : spec_(std::move(spec)),
      num_classes_(num_classes),
      bin_width_(spec_.adversary.entropy_bin_width),
      confusion_(num_classes) {
  LINKPAD_EXPECTS(num_classes >= 2);
  LINKPAD_EXPECTS(spec_.adversary.window_size >= 2);
  // Mirror EdfClassifier::train's floor so a bad knob fails at
  // construction, not deep inside train() with an internal-state message.
  if (is_edf()) LINKPAD_EXPECTS(spec_.edf_max_reference >= 16);
  if (is_cpd()) {
    LINKPAD_EXPECTS(!is_edf());
    // The two-sided schemes target one class per side (cpd.hpp).
    LINKPAD_EXPECTS(num_classes == 2);
    LINKPAD_EXPECTS(spec_.cpd->max_training_samples >= 2);
  }
  if (!needs_bin_width()) prepare();
}

Detector::Detector(const Detector& other)
    : spec_(other.spec_),
      num_classes_(other.num_classes_),
      bin_width_(other.bin_width_),
      prepared_(other.prepared_),
      trained_(other.trained_),
      window_buffers_(other.window_buffers_),
      training_features_(other.training_features_),
      references_(other.references_),
      priors_(other.priors_),
      classifier_(other.classifier_),
      confusion_(other.confusion_),
      cpd_model_(other.cpd_model_),
      cpd_states_(other.cpd_states_),
      checkpoints_(other.checkpoints_),
      test_consumed_(other.test_consumed_),
      next_checkpoint_(other.next_checkpoint_),
      checkpoint_rows_(other.checkpoint_rows_),
      cpd_rows_(other.cpd_rows_) {
  accumulators_.reserve(other.accumulators_.size());
  for (const auto& acc : other.accumulators_) {
    accumulators_.push_back(acc->clone());
  }
}

Detector& Detector::operator=(const Detector& other) {
  if (this == &other) return *this;
  Detector copy(other);
  *this = std::move(copy);
  return *this;
}

std::string Detector::name() const {
  if (is_cpd()) return spec_.cpd->name();
  if (is_edf()) {
    return spec_.edf == EdfDistance::kKolmogorovSmirnov ? "EDF nearest (KS)"
                                                        : "EDF nearest (CvM)";
  }
  return feature_name(spec_.adversary.feature);
}

bool Detector::needs_bin_width() const {
  return !is_edf() && !is_cpd() &&
         spec_.adversary.feature == FeatureKind::kSampleEntropy &&
         bin_width_ <= 0.0;
}

void Detector::set_bin_width(double bin_width) {
  LINKPAD_EXPECTS(bin_width > 0.0);
  LINKPAD_EXPECTS(!prepared_);
  bin_width_ = bin_width;
  prepare();
}

void Detector::prepare() {
  LINKPAD_EXPECTS(!prepared_);
  if (is_cpd()) {
    // Windowless: the only pre-training state is the raw-PIAT pool
    // (training_features_ doubles as it — capped, first-k per class).
    training_features_.resize(num_classes_);
    prepared_ = true;
    return;
  }
  if (is_edf()) {
    window_buffers_.resize(num_classes_);
    for (auto& buffer : window_buffers_) {
      buffer.reserve(spec_.adversary.window_size);
    }
    references_.resize(num_classes_);
  } else {
    AccumulatorOptions options;
    options.entropy_bin_width = bin_width_;
    options.entropy_bias = spec_.adversary.entropy_bias;
    options.quantile_mode = spec_.quantile_mode;
    accumulators_.reserve(num_classes_);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      accumulators_.push_back(
          make_window_accumulator(spec_.adversary.feature, options));
    }
    training_features_.resize(num_classes_);
  }
  prepared_ = true;
}

void Detector::thin_reference(std::vector<double>& reference) const {
  thin_reference_sorted(reference, spec_.edf_max_reference);
}

void Detector::complete_window(std::size_t class_index, bool testing) {
  if (is_edf()) {
    if (testing) {
      classify_edf_window(class_index);
    } else {
      auto& reference = references_[class_index];
      auto& window = window_buffers_[class_index];
      reference.insert(reference.end(), window.begin(), window.end());
      // Progressive thinning bounds training memory at ~2x the reference
      // cap. Each thin resamples the sorted prefix, so the final reference
      // approximates (not reproduces) a full-sort thin — documented
      // tolerance of the streaming EDF detector.
      if (reference.size() >= 2 * spec_.edf_max_reference) {
        thin_reference(reference);
      }
    }
    window_buffers_[class_index].clear();
    return;
  }
  auto& acc = *accumulators_[class_index];
  const double feature = acc.value();
  if (testing) {
    confusion_.add(static_cast<ClassLabel>(class_index),
                   classifier_->classify(feature));
  } else {
    training_features_[class_index].push_back(feature);
  }
  acc.reset();
}

void Detector::classify_edf_window(std::size_t true_class) {
  // The buffer is cleared right after this call, so sort it in place — no
  // per-window allocation on the EDF hot path.
  auto& sorted = window_buffers_[true_class];
  std::sort(sorted.begin(), sorted.end());
  ClassLabel best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < references_.size(); ++c) {
    const double d = spec_.edf == EdfDistance::kKolmogorovSmirnov
                         ? stats::ks_distance_sorted(sorted, references_[c])
                         : stats::cvm_distance_sorted(sorted, references_[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<ClassLabel>(c);
    }
  }
  confusion_.add(static_cast<ClassLabel>(true_class), best);
}

std::size_t Detector::window_fill(std::size_t class_index) const {
  if (is_cpd()) return 0;  // windowless: any chunk size is fine
  return is_edf() ? window_buffers_[class_index].size()
                  : accumulators_[class_index]->count();
}

void Detector::feed_chunk(std::size_t class_index,
                          std::span<const double> chunk, bool testing) {
  if (is_cpd()) {
    if (testing) {
      auto& state = cpd_states_[class_index];
      for (double x : chunk) cpd_model_->update(state, x);
    } else {
      // First-k raw-PIAT pool per class: the cap is a sample count, so the
      // pool (and the trained model) is batch-boundary independent.
      auto& pool = training_features_[class_index];
      const std::size_t cap = spec_.cpd->max_training_samples;
      for (double x : chunk) {
        if (pool.size() >= cap) break;
        pool.push_back(x);
      }
    }
    return;
  }
  // The caller guarantees the chunk fits inside the current window.
  const std::size_t n = spec_.adversary.window_size;
  if (is_edf()) {
    auto& window = window_buffers_[class_index];
    window.insert(window.end(), chunk.begin(), chunk.end());
    if (window.size() == n) complete_window(class_index, testing);
  } else {
    auto& acc = *accumulators_[class_index];
    acc.add_span(chunk);
    if (acc.count() == n) complete_window(class_index, testing);
  }
}

void Detector::feed(std::size_t class_index, std::span<const double> batch,
                    bool testing) {
  LINKPAD_EXPECTS(prepared_);
  LINKPAD_EXPECTS(class_index < num_classes_);
  const std::size_t n = spec_.adversary.window_size;
  // Walk the batch window by window: one (de)virtualized span add per
  // window chunk instead of a virtual call + boundary branch per sample.
  // Chunks additionally break at armed checkpoints so a snapshot lands
  // exactly at its prefix length.
  while (!batch.empty()) {
    std::size_t take = std::min(batch.size(), n - window_fill(class_index));
    if (testing && !checkpoints_.empty() &&
        next_checkpoint_[class_index] < checkpoints_.size()) {
      const std::size_t to_checkpoint =
          checkpoints_[next_checkpoint_[class_index]] -
          test_consumed_[class_index];
      take = std::min(take, to_checkpoint);
    }
    feed_chunk(class_index, batch.first(take), testing);
    batch = batch.subspan(take);
    if (testing && !checkpoints_.empty()) {
      test_consumed_[class_index] += take;
      auto& next = next_checkpoint_[class_index];
      // A window completing at the boundary is tallied above, BEFORE the
      // snapshot — exactly what a fresh bank stopped here would hold.
      while (next < checkpoints_.size() &&
             test_consumed_[class_index] == checkpoints_[next]) {
        if (is_cpd()) {
          cpd_rows_[class_index][next] = cpd_states_[class_index];
        } else {
          auto& row = checkpoint_rows_[class_index][next];
          row.resize(num_classes_);
          for (std::size_t j = 0; j < num_classes_; ++j) {
            row[j] = confusion_.count(static_cast<ClassLabel>(class_index),
                                      static_cast<ClassLabel>(j));
          }
        }
        ++next;
      }
    }
  }
}

void Detector::arm_checkpoints(std::vector<std::size_t> test_prefixes) {
  LINKPAD_EXPECTS(checkpoints_.empty());
  LINKPAD_EXPECTS(confusion_.total() == 0);
  // A CPD detector's run-time evidence lives in its stream states, not in
  // the confusion matrix — enforce the "before any consume_test" contract
  // there too.
  for (const auto& state : cpd_states_) LINKPAD_EXPECTS(state.n == 0);
  std::sort(test_prefixes.begin(), test_prefixes.end());
  test_prefixes.erase(
      std::unique(test_prefixes.begin(), test_prefixes.end()),
      test_prefixes.end());
  LINKPAD_EXPECTS(test_prefixes.empty() || test_prefixes.front() >= 1);
  checkpoints_ = std::move(test_prefixes);
  test_consumed_.assign(num_classes_, 0);
  next_checkpoint_.assign(num_classes_, 0);
  checkpoint_rows_.assign(
      num_classes_, std::vector<std::vector<std::uint64_t>>(checkpoints_.size()));
  if (is_cpd()) {
    cpd_rows_.assign(num_classes_,
                     std::vector<CpdClassState>(checkpoints_.size()));
  }
}

ConfusionMatrix Detector::confusion_at(std::size_t prefix) const {
  const auto it =
      std::find(checkpoints_.begin(), checkpoints_.end(), prefix);
  LINKPAD_EXPECTS(it != checkpoints_.end() &&
                  "confusion_at: prefix was not armed as a checkpoint");
  const auto idx =
      static_cast<std::size_t>(std::distance(checkpoints_.begin(), it));
  // A CPD detector never fills the confusion matrix; its prefix outcome is
  // cpd_outcome_at(). Return the (empty) matrix so bank-wide evaluate_at
  // keeps its detector-order shape.
  if (is_cpd()) return ConfusionMatrix(num_classes_);
  ConfusionMatrix out(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const bool crossed = next_checkpoint_[c] > idx;
    for (std::size_t j = 0; j < num_classes_; ++j) {
      const std::uint64_t count =
          crossed ? checkpoint_rows_[c][idx][j]
                  : confusion_.count(static_cast<ClassLabel>(c),
                                     static_cast<ClassLabel>(j));
      out.add_count(static_cast<ClassLabel>(c), static_cast<ClassLabel>(j),
                    count);
    }
  }
  return out;
}

void Detector::consume_training(std::size_t class_index,
                                std::span<const double> batch) {
  LINKPAD_EXPECTS(!trained_);
  feed(class_index, batch, /*testing=*/false);
}

void Detector::train(const std::vector<double>& priors) {
  LINKPAD_EXPECTS(prepared_ && !trained_);
  LINKPAD_EXPECTS(priors.size() == num_classes_);
  priors_ = priors;
  if (is_cpd()) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      LINKPAD_EXPECTS(training_features_[c].size() >= 2);
    }
    cpd_model_ = CpdModel::train(*spec_.cpd, training_features_);
    cpd_states_.assign(num_classes_, cpd_model_->initial_state());
    trained_ = true;
    return;
  }
  if (is_edf()) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      window_buffers_[c].clear();  // drop the partial trailing window
      LINKPAD_EXPECTS(references_[c].size() >= 16);
      thin_reference(references_[c]);
    }
  } else {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      accumulators_[c]->reset();  // drop the partial trailing window
      LINKPAD_EXPECTS(training_features_[c].size() >= 2);
    }
    classifier_ =
        BayesClassifier::train(training_features_, priors_,
                               spec_.adversary.density, spec_.adversary.bandwidth,
                               spec_.adversary.fixed_bandwidth);
  }
  trained_ = true;
}

void Detector::consume_test(std::size_t true_class,
                            std::span<const double> batch) {
  LINKPAD_EXPECTS(trained_);
  feed(true_class, batch, /*testing=*/true);
}

double Detector::detection_rate() const {
  LINKPAD_EXPECTS(trained_);
  return confusion_.detection_rate(priors_);
}

const BayesClassifier& Detector::classifier() const {
  LINKPAD_EXPECTS(classifier_.has_value());
  return *classifier_;
}

const CpdModel& Detector::cpd_model() const {
  LINKPAD_EXPECTS(cpd_model_.has_value());
  return *cpd_model_;
}

CpdOutcome Detector::cpd_outcome() const {
  LINKPAD_EXPECTS(is_cpd() && trained_);
  CpdOutcome out;
  out.kind = spec_.cpd->kind;
  out.threshold = cpd_model_->threshold();
  out.ttd = cpd_model_->time_to_detection(cpd_states_);
  return out;
}

CpdOutcome Detector::cpd_outcome_at(std::size_t prefix) const {
  LINKPAD_EXPECTS(is_cpd() && trained_);
  const auto it = std::find(checkpoints_.begin(), checkpoints_.end(), prefix);
  LINKPAD_EXPECTS(it != checkpoints_.end() &&
                  "cpd_outcome_at: prefix was not armed as a checkpoint");
  const auto idx =
      static_cast<std::size_t>(std::distance(checkpoints_.begin(), it));
  // Same crossed-or-current rule as confusion_at: a class that has not
  // reached the prefix yet contributes everything it was given — exactly
  // what a fresh detector fed that short stream would hold.
  std::vector<CpdClassState> states(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    states[c] = next_checkpoint_[c] > idx ? cpd_rows_[c][idx] : cpd_states_[c];
  }
  CpdOutcome out;
  out.kind = spec_.cpd->kind;
  out.threshold = cpd_model_->threshold();
  out.ttd = cpd_model_->time_to_detection(states);
  return out;
}

// -------------------------------------------------------------- DetectorBank

DetectorBank::DetectorBank(std::vector<DetectorSpec> specs,
                           std::size_t num_classes)
    : num_classes_(num_classes) {
  LINKPAD_EXPECTS(!specs.empty());
  LINKPAD_EXPECTS(num_classes >= 2);
  detectors_.reserve(specs.size());
  for (auto& spec : specs) {
    detectors_.push_back(
        std::make_unique<Detector>(std::move(spec), num_classes));
  }
}

namespace {

std::vector<DetectorSpec> specs_for_features(
    const AdversaryConfig& base, const std::vector<FeatureKind>& features) {
  std::vector<DetectorSpec> specs;
  specs.reserve(features.size());
  for (const auto kind : features) {
    DetectorSpec spec;
    spec.adversary = base;
    spec.adversary.feature = kind;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

DetectorBank::DetectorBank(const AdversaryConfig& base,
                           const std::vector<FeatureKind>& features,
                           std::size_t num_classes)
    : DetectorBank(specs_for_features(base, features), num_classes) {}

DetectorBank::DetectorBank(const DetectorBank& other)
    : num_classes_(other.num_classes_),
      prepass_pooled_(other.prepass_pooled_),
      prepass_finished_(other.prepass_finished_) {
  detectors_.reserve(other.detectors_.size());
  for (const auto& detector : other.detectors_) {
    detectors_.push_back(std::make_unique<Detector>(*detector));
  }
}

DetectorBank& DetectorBank::operator=(const DetectorBank& other) {
  if (this == &other) return *this;
  DetectorBank copy(other);
  *this = std::move(copy);
  return *this;
}

void DetectorBank::arm_checkpoints(std::vector<std::size_t> test_prefixes) {
  for (auto& detector : detectors_) {
    detector->arm_checkpoints(test_prefixes);
  }
}

std::vector<ConfusionMatrix> DetectorBank::evaluate_at(
    std::size_t prefix) const {
  std::vector<ConfusionMatrix> out;
  out.reserve(detectors_.size());
  for (const auto& detector : detectors_) {
    out.push_back(detector->confusion_at(prefix));
  }
  return out;
}

bool DetectorBank::needs_prepass() const {
  if (prepass_finished_) return false;
  return std::any_of(detectors_.begin(), detectors_.end(),
                     [](const auto& d) { return d->needs_bin_width(); });
}

void DetectorBank::consume_prepass(std::span<const double> batch) {
  LINKPAD_EXPECTS(!prepass_finished_);
  for (double x : batch) prepass_pooled_.add(x);
}

void DetectorBank::finish_prepass() { finish_prepass(prepass_pooled_); }

void DetectorBank::finish_prepass(const stats::RunningStats& pooled) {
  LINKPAD_EXPECTS(!prepass_finished_);
  LINKPAD_EXPECTS(pooled.count() >= 2);
  for (auto& detector : detectors_) {
    if (!detector->needs_bin_width()) continue;
    // Scott's histogram rule at the detector's window size — the exact
    // selection Adversary::train performs on pooled training data.
    const double n = static_cast<double>(detector->spec().adversary.window_size);
    const double width = 3.49 * pooled.stddev() * std::pow(n, -1.0 / 3.0);
    LINKPAD_ENSURES(width > 0.0);
    detector->set_bin_width(width);
  }
  prepass_finished_ = true;
}

void DetectorBank::consume_training(std::size_t class_index,
                                    std::span<const double> batch) {
  LINKPAD_EXPECTS(!needs_prepass());
  for (auto& detector : detectors_) {
    detector->consume_training(class_index, batch);
  }
}

void DetectorBank::train(std::vector<double> priors) {
  if (priors.empty()) {
    priors.assign(num_classes_, 1.0 / static_cast<double>(num_classes_));
  }
  LINKPAD_EXPECTS(priors.size() == num_classes_);
  for (auto& detector : detectors_) detector->train(priors);
}

bool DetectorBank::trained() const {
  return std::all_of(detectors_.begin(), detectors_.end(),
                     [](const auto& d) { return d->trained(); });
}

void DetectorBank::consume_test(std::size_t true_class,
                                std::span<const double> batch) {
  for (auto& detector : detectors_) detector->consume_test(true_class, batch);
}

const Detector& DetectorBank::detector(std::size_t i) const {
  LINKPAD_EXPECTS(i < detectors_.size());
  return *detectors_[i];
}

}  // namespace linkpad::classify
