// Feature statistics of a PIAT window (paper Sec 3.3 step 1).
//
// The adversary reduces each captured window {X_1..X_n} to one scalar
// feature s before classification. The paper studies sample mean, sample
// variance and sample entropy; we add two robust extensions (median absolute
// deviation, interquartile range) for the ablation benches — both are
// dispersion features like variance, but much less outlier-sensitive, which
// probes the paper's observation that outliers from congested routers hurt
// the variance feature more than entropy.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "stats/entropy.hpp"

namespace linkpad::classify {

/// Feature selection.
enum class FeatureKind {
  kSampleMean,
  kSampleVariance,
  kSampleEntropy,
  kMedianAbsDeviation,  ///< extension: robust scale feature
  kInterquartileRange,  ///< extension: robust scale feature
};

/// Human-readable feature name ("sample mean", ...).
std::string feature_name(FeatureKind kind);

/// Stateless reducer from a PIAT window to a scalar.
class FeatureExtractor {
 public:
  virtual ~FeatureExtractor() = default;
  [[nodiscard]] virtual double extract(std::span<const double> window) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Sample mean, eq. (17).
class SampleMeanFeature final : public FeatureExtractor {
 public:
  [[nodiscard]] double extract(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "sample mean"; }
};

/// Unbiased sample variance, eq. (19).
class SampleVarianceFeature final : public FeatureExtractor {
 public:
  [[nodiscard]] double extract(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "sample variance"; }
};

/// Histogram entropy with constant bin width, eq. (25).
class SampleEntropyFeature final : public FeatureExtractor {
 public:
  SampleEntropyFeature(double bin_width,
                       stats::EntropyBias bias = stats::EntropyBias::kNone);

  [[nodiscard]] double extract(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "sample entropy"; }
  [[nodiscard]] double bin_width() const { return bin_width_; }

 private:
  double bin_width_;
  stats::EntropyBias bias_;
};

/// Median absolute deviation about the median (extension).
class MadFeature final : public FeatureExtractor {
 public:
  [[nodiscard]] double extract(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "MAD"; }
};

/// Interquartile range (extension).
class IqrFeature final : public FeatureExtractor {
 public:
  [[nodiscard]] double extract(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "IQR"; }
};

/// Factory. `entropy_bin_width` is required (> 0) for kSampleEntropy.
std::unique_ptr<FeatureExtractor> make_feature(
    FeatureKind kind, double entropy_bin_width = 0.0,
    stats::EntropyBias bias = stats::EntropyBias::kNone);

}  // namespace linkpad::classify
