// EDF adversary (extension): nearest-distribution classification.
//
// The paper's adversary compresses each PIAT window into ONE scalar
// (mean / variance / entropy). A stronger attacker keeps the whole
// empirical CDF: train by pooling each class's PIATs into a reference
// EDF, classify a captured window by the smallest KS or CvM distance to
// the references. This uses every moment at once and upper-bounds what
// the scalar features can see — the `abl_edf_adversary` bench measures
// how much margin that costs the defender.
#pragma once

#include <span>
#include <vector>

#include "classify/evaluation.hpp"
#include "util/types.hpp"

namespace linkpad::classify {

/// Distance between a window's EDF and a class reference EDF.
enum class EdfDistance {
  kKolmogorovSmirnov,  ///< sup-norm: sensitive to the largest CDF gap
  kCramerVonMises,     ///< L2-norm: integrates the gap over the body
};

/// Sort `sample` in place and, when it exceeds `max_reference`, thin it to
/// exactly `max_reference` points by quantiles of the SORTED sample —
/// preserves the EDF shape at bounded cost. (Temporal-stride thinning is
/// unsafe here: padded PIAT streams carry periodic structure from CBR
/// payloads, and a resonant stride samples a single phase of that cycle.)
/// Shared by EdfClassifier::train and the streaming EDF detectors.
void thin_reference_sorted(std::vector<double>& sample,
                           std::size_t max_reference);

/// Nearest-distribution classifier over per-class reference EDFs.
class EdfClassifier {
 public:
  /// Train from one long PIAT stream per class. Each reference keeps at
  /// most `max_reference` points (uniformly thinned), which bounds the
  /// per-classification cost at O(window + max_reference).
  static EdfClassifier train(
      const std::vector<std::vector<double>>& class_streams,
      EdfDistance distance = EdfDistance::kKolmogorovSmirnov,
      std::size_t max_reference = 20000);

  /// Classify one captured window (unsorted input; copied internally).
  [[nodiscard]] ClassLabel classify_window(std::span<const double> window) const;

  /// Distance from `window` to each class reference (for inspection).
  [[nodiscard]] std::vector<double> distances(
      std::span<const double> window) const;

  /// Chop per-class test streams into `window_size` windows and classify.
  [[nodiscard]] ConfusionMatrix evaluate(
      const std::vector<std::vector<double>>& class_test_streams,
      std::size_t window_size) const;

  [[nodiscard]] std::size_t num_classes() const { return references_.size(); }
  [[nodiscard]] EdfDistance distance_kind() const { return distance_; }

 private:
  EdfClassifier() = default;

  EdfDistance distance_ = EdfDistance::kKolmogorovSmirnov;
  std::vector<std::vector<double>> references_;  // sorted per class
};

}  // namespace linkpad::classify
