#include "classify/bayes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace linkpad::classify {

BayesClassifier BayesClassifier::train(
    const std::vector<std::vector<double>>& class_features,
    std::vector<double> priors, DensityKind kind, stats::BandwidthRule rule,
    double fixed_bandwidth) {
  LINKPAD_EXPECTS(class_features.size() >= 2);
  LINKPAD_EXPECTS(priors.size() == class_features.size());
  double prior_sum = 0.0;
  for (double p : priors) {
    LINKPAD_EXPECTS(p > 0.0);
    prior_sum += p;
  }
  LINKPAD_EXPECTS(std::abs(prior_sum - 1.0) < 1e-6);

  BayesClassifier clf;
  clf.priors_ = std::move(priors);
  clf.feature_lo_ = std::numeric_limits<double>::infinity();
  clf.feature_hi_ = -clf.feature_lo_;
  for (const auto& features : class_features) {
    LINKPAD_EXPECTS(features.size() >= 2);
    clf.models_.push_back(make_density(kind, features, rule, fixed_bandwidth));
    const auto [mn, mx] = std::minmax_element(features.begin(), features.end());
    clf.feature_lo_ = std::min(clf.feature_lo_, *mn);
    clf.feature_hi_ = std::max(clf.feature_hi_, *mx);
  }
  return clf;
}

BayesClassifier::BayesClassifier(const BayesClassifier& other)
    : priors_(other.priors_),
      feature_lo_(other.feature_lo_),
      feature_hi_(other.feature_hi_) {
  models_.reserve(other.models_.size());
  for (const auto& model : other.models_) models_.push_back(model->clone());
}

BayesClassifier& BayesClassifier::operator=(const BayesClassifier& other) {
  if (this == &other) return *this;
  BayesClassifier copy(other);
  *this = std::move(copy);
  return *this;
}

ClassLabel BayesClassifier::classify(double s) const {
  ClassLabel best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < models_.size(); ++i) {
    const double score = std::log(priors_[i]) + models_[i]->log_pdf(s);
    if (score > best_score) {
      best_score = score;
      best = static_cast<ClassLabel>(i);
    }
  }
  return best;
}

std::vector<double> BayesClassifier::posteriors(double s) const {
  std::vector<double> scores(models_.size());
  double max_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < models_.size(); ++i) {
    scores[i] = std::log(priors_[i]) + models_[i]->log_pdf(s);
    max_score = std::max(max_score, scores[i]);
  }
  double total = 0.0;
  for (double& sc : scores) {
    sc = std::exp(sc - max_score);  // log-sum-exp stabilization
    total += sc;
  }
  for (double& sc : scores) sc /= total;
  return scores;
}

std::optional<double> BayesClassifier::decision_threshold() const {
  if (models_.size() != 2) return std::nullopt;
  const double lo = feature_lo_;
  const double hi = feature_hi_;
  if (!(hi > lo)) return std::nullopt;

  auto diff = [this](double s) {
    return (std::log(priors_[0]) + models_[0]->log_pdf(s)) -
           (std::log(priors_[1]) + models_[1]->log_pdf(s));
  };

  // Scan for sign changes; accept only a unique crossing.
  constexpr int kGrid = 512;
  std::optional<double> bracket_lo;
  int crossings = 0;
  double prev_s = lo;
  double prev_v = diff(lo);
  for (int i = 1; i <= kGrid; ++i) {
    const double s = lo + (hi - lo) * i / kGrid;
    const double v = diff(s);
    if (std::isfinite(prev_v) && std::isfinite(v) &&
        ((prev_v < 0.0) != (v < 0.0))) {
      ++crossings;
      if (crossings == 1) bracket_lo = prev_s;
    }
    prev_s = s;
    prev_v = v;
  }
  if (crossings != 1 || !bracket_lo) return std::nullopt;

  // Bisection inside the bracketing cell.
  double a = *bracket_lo;
  double b = a + (hi - lo) / kGrid;
  double fa = diff(a);
  for (int iter = 0; iter < 80; ++iter) {
    const double m = 0.5 * (a + b);
    const double fm = diff(m);
    if ((fa < 0.0) == (fm < 0.0)) {
      a = m;
      fa = fm;
    } else {
      b = m;
    }
  }
  return 0.5 * (a + b);
}

}  // namespace linkpad::classify
