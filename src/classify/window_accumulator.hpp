// Streaming per-window feature accumulators (the single-pass counterpart of
// FeatureExtractor).
//
// A WindowAccumulator consumes the PIATs of one window sample by sample and
// produces the window's feature value at the end — so a capture can be
// pulled from its backend in bounded batches and reduced on the fly, with
// resident memory independent of the capture length. Accumulators and
// batch extractors share their numeric recurrences:
//
//  * mean      — in-order running sum: bit-identical to stats::mean;
//  * variance  — Welford moments (stats::RunningStats), the same recurrence
//                SampleVarianceFeature runs: bit-identical;
//  * entropy   — incremental SparseHistogram at fixed Δh; the histogram is
//                order-independent, so bit-identical to stats::sample_entropy;
//  * MAD / IQR — QuantileMode::kExact buffers the window (memory O(n),
//                bounded by the window size) and evaluates the same
//                sorted-quantile code as the batch features: bit-identical.
//                QuantileMode::kP2Sketch swaps the buffer for P² quantile
//                markers — O(1) memory for arbitrarily large windows, with
//                the ~1% relative accuracy documented in quantile_sketch.hpp.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "classify/feature.hpp"
#include "stats/entropy.hpp"

namespace linkpad::classify {

/// How the streaming MAD/IQR accumulators obtain their quantiles.
enum class QuantileMode {
  kExact,     ///< buffer the window; bit-identical to the batch features
  kP2Sketch,  ///< P² markers; O(1) memory, documented ~1% tolerance
};

/// Knobs for make_window_accumulator (mirrors make_feature + QuantileMode).
struct AccumulatorOptions {
  /// Required (> 0) for kSampleEntropy.
  double entropy_bin_width = 0.0;
  stats::EntropyBias entropy_bias = stats::EntropyBias::kNone;
  QuantileMode quantile_mode = QuantileMode::kExact;
};

/// Incremental reducer from one window's PIATs to its scalar feature.
class WindowAccumulator {
 public:
  virtual ~WindowAccumulator() = default;

  virtual void add(double x) = 0;

  /// Bulk add: same result as add() per element. The hot accumulators
  /// override this with a devirtualized tight loop — one virtual dispatch
  /// per span instead of per sample on the bank's streaming path.
  virtual void add_span(std::span<const double> xs) {
    for (double x : xs) add(x);
  }

  /// Feature value of the samples added since construction / reset().
  [[nodiscard]] virtual double value() const = 0;

  /// Forget all samples; configuration (bin width, quantile) is kept.
  virtual void reset() = 0;

  /// Samples added since the last reset.
  [[nodiscard]] virtual std::size_t count() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy of the accumulator INCLUDING partially-consumed window
  /// state — the checkpoint primitive for forked detector banks. O(state):
  /// O(1) for the moment/sketch accumulators, O(occupied bins) for entropy
  /// and O(buffered samples) for the exact dispersion accumulators.
  [[nodiscard]] virtual std::unique_ptr<WindowAccumulator> clone() const = 0;

  void add_batch(std::span<const double> xs) { add_span(xs); }
};

/// Factory. Throws ContractViolation for kSampleEntropy without a bin width.
std::unique_ptr<WindowAccumulator> make_window_accumulator(
    FeatureKind kind, const AccumulatorOptions& options = {});

}  // namespace linkpad::classify
