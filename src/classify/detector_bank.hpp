// DetectorBank: every configured detector over ONE pass of the capture.
//
// The paper's adversary (Sec 3.3) reduces each PIAT window to a scalar and
// classifies it. Evaluating several attack statistics used to mean one full
// capture (or simulation) per statistic; the bank instead fans each incoming
// PIAT batch out to all detectors, so an N-feature study costs one stream
// pass and O(batch + N·window) resident memory. Two detector flavours ride
// the same pass:
//
//  * feature detectors — a WindowAccumulator feeds a per-feature Bayes
//    classifier (KDE / Gaussian / histogram density, as AdversaryConfig
//    selects); numerically these reproduce classify::Adversary bit for bit
//    (see window_accumulator.hpp for the per-feature guarantees);
//  * EDF detectors — whole windows classified by nearest reference EDF
//    (KS or CvM), the upper-envelope attack of edf_classifier.hpp. Their
//    references are built with bounded memory via progressive quantile
//    thinning, a documented approximation of EdfClassifier::train's
//    full-sort thinning.
//
// Protocol (phases must come in this order):
//   1. optional prepass     — consume_prepass(batch) over all TRAINING data
//                             in class order, then finish_prepass(); only
//                             needed when needs_prepass() (an entropy
//                             detector without an explicit Δh: the Scott
//                             rule wants the pooled training stddev).
//   2. training             — consume_training(class, batch) per class;
//                             then train().
//   3. run-time             — consume_test(true_class, batch); per-detector
//                             confusion matrices accumulate.
//
// Batches may be any size: results are independent of batch boundaries
// (every accumulator is per-sample sequential). Partial trailing windows
// are dropped, exactly like Adversary::windows_of.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "classify/adversary.hpp"
#include "classify/edf_classifier.hpp"
#include "classify/window_accumulator.hpp"
#include "stats/descriptive.hpp"

namespace linkpad::classify {

/// One detector's configuration inside a bank.
struct DetectorSpec {
  /// Feature, window size, entropy knobs, density model — as Adversary.
  AdversaryConfig adversary;
  /// Quantile backend for streaming MAD/IQR.
  QuantileMode quantile_mode = QuantileMode::kExact;
  /// When set, the detector ignores `adversary.feature` and classifies
  /// whole windows by nearest reference EDF with this distance.
  std::optional<EdfDistance> edf;
  /// Per-class reference size bound for EDF detectors.
  std::size_t edf_max_reference = 20000;
};

/// One streaming detection pipeline: accumulator → features → classifier
/// (or window → nearest reference EDF). Owned and driven by DetectorBank.
class Detector {
 public:
  Detector(DetectorSpec spec, std::size_t num_classes);

  [[nodiscard]] const DetectorSpec& spec() const { return spec_; }
  [[nodiscard]] bool is_edf() const { return spec_.edf.has_value(); }
  /// "sample entropy", "EDF nearest (KS)", ...
  [[nodiscard]] std::string name() const;

  /// True until an entropy detector without an explicit Δh gets one.
  [[nodiscard]] bool needs_bin_width() const;
  void set_bin_width(double bin_width);
  /// The Δh in use (entropy detectors, after auto-selection).
  [[nodiscard]] double entropy_bin_width() const { return bin_width_; }

  void consume_training(std::size_t class_index, std::span<const double> batch);
  void train(const std::vector<double>& priors);
  [[nodiscard]] bool trained() const { return trained_; }

  void consume_test(std::size_t true_class, std::span<const double> batch);

  [[nodiscard]] const ConfusionMatrix& confusion() const { return confusion_; }
  /// Prior-weighted detection rate of the windows consumed so far.
  [[nodiscard]] double detection_rate() const;

  /// Training feature values per class (feature detectors only).
  [[nodiscard]] const std::vector<std::vector<double>>& training_features()
      const {
    return training_features_;
  }
  /// The fitted per-feature Bayes rule (feature detectors only).
  [[nodiscard]] const BayesClassifier& classifier() const;

 private:
  friend class DetectorBank;

  void prepare();  // build accumulators once the bin width is known
  void feed(std::size_t class_index, std::span<const double> batch,
            bool testing);
  void complete_window(std::size_t class_index, bool testing);
  void classify_edf_window(std::size_t true_class);
  void thin_reference(std::vector<double>& reference) const;

  DetectorSpec spec_;
  std::size_t num_classes_;
  double bin_width_ = 0.0;
  bool prepared_ = false;
  bool trained_ = false;

  // Per-class streaming window state (accumulator OR edf window buffer).
  std::vector<std::unique_ptr<WindowAccumulator>> accumulators_;
  std::vector<std::vector<double>> window_buffers_;  // EDF mode

  std::vector<std::vector<double>> training_features_;  // feature mode
  std::vector<std::vector<double>> references_;         // EDF mode, sorted
  std::vector<double> priors_;
  std::optional<BayesClassifier> classifier_;
  ConfusionMatrix confusion_;
};

/// Evaluates all configured detectors over a single pass of the stream.
class DetectorBank {
 public:
  DetectorBank(std::vector<DetectorSpec> specs, std::size_t num_classes);

  /// Convenience: one feature detector per kind, sharing `base`'s window
  /// size / entropy / density knobs.
  DetectorBank(const AdversaryConfig& base,
               const std::vector<FeatureKind>& features,
               std::size_t num_classes);

  /// True when some entropy detector needs the pooled-training-data Δh
  /// prepass before training can start.
  [[nodiscard]] bool needs_prepass() const;

  /// Feed ALL training data once (class order, for bit-identity with
  /// Adversary::train's pooled statistics), then finish_prepass().
  void consume_prepass(std::span<const double> batch);
  void finish_prepass();

  void consume_training(std::size_t class_index, std::span<const double> batch);

  /// Fit every detector. Empty priors = equal.
  void train(std::vector<double> priors = {});
  [[nodiscard]] bool trained() const;

  void consume_test(std::size_t true_class, std::span<const double> batch);

  [[nodiscard]] std::size_t size() const { return detectors_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] const Detector& detector(std::size_t i) const;

 private:
  std::vector<std::unique_ptr<Detector>> detectors_;
  std::size_t num_classes_;
  stats::RunningStats prepass_pooled_;
  bool prepass_finished_ = false;
};

}  // namespace linkpad::classify
