// DetectorBank: every configured detector over ONE pass of the capture.
//
// The paper's adversary (Sec 3.3) reduces each PIAT window to a scalar and
// classifies it. Evaluating several attack statistics used to mean one full
// capture (or simulation) per statistic; the bank instead fans each incoming
// PIAT batch out to all detectors, so an N-feature study costs one stream
// pass and O(batch + N·window) resident memory. Two detector flavours ride
// the same pass:
//
//  * feature detectors — a WindowAccumulator feeds a per-feature Bayes
//    classifier (KDE / Gaussian / histogram density, as AdversaryConfig
//    selects); numerically these reproduce classify::Adversary bit for bit
//    (see window_accumulator.hpp for the per-feature guarantees);
//  * EDF detectors — whole windows classified by nearest reference EDF
//    (KS or CvM), the upper-envelope attack of edf_classifier.hpp. Their
//    references are built with bounded memory via progressive quantile
//    thinning, a documented approximation of EdfClassifier::train's
//    full-sort thinning.
//
// Protocol (phases must come in this order):
//   1. optional prepass     — consume_prepass(batch) over all TRAINING data
//                             in class order, then finish_prepass(); only
//                             needed when needs_prepass() (an entropy
//                             detector without an explicit Δh: the Scott
//                             rule wants the pooled training stddev).
//   2. training             — consume_training(class, batch) per class;
//                             then train().
//   3. run-time             — consume_test(true_class, batch); per-detector
//                             confusion matrices accumulate.
//
// Batches may be any size: results are independent of batch boundaries
// (every accumulator is per-sample sequential). Partial trailing windows
// are dropped, exactly like Adversary::windows_of.
//
// Checkpoints (the prefix-replay primitives of DESIGN.md §2.6):
//  * arm_checkpoints({n1 < n2 < ...}) before the run-time phase makes one
//    test pass emit outcomes at every prefix length: evaluate_at(ni) is the
//    per-detector confusion as if only the FIRST ni test PIATs of each
//    class had been consumed — bit-identical to stopping a fresh bank
//    there, because every accumulator is per-sample sequential and a
//    window completed within the prefix is the same window either way.
//  * checkpoint() deep-copies the whole bank (partially-filled windows,
//    references, classifiers, confusions); the fork and the original then
//    evolve independently — "what if the adversary kept watching" studies
//    without re-training or re-capturing.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "classify/adversary.hpp"
#include "classify/cpd.hpp"
#include "classify/edf_classifier.hpp"
#include "classify/window_accumulator.hpp"
#include "stats/descriptive.hpp"

namespace linkpad::classify {

/// One detector's configuration inside a bank.
struct DetectorSpec {
  /// Feature, window size, entropy knobs, density model — as Adversary.
  AdversaryConfig adversary;
  /// Quantile backend for streaming MAD/IQR.
  QuantileMode quantile_mode = QuantileMode::kExact;
  /// When set, the detector ignores `adversary.feature` and classifies
  /// whole windows by nearest reference EDF with this distance.
  std::optional<EdfDistance> edf;
  /// Per-class reference size bound for EDF detectors.
  std::size_t edf_max_reference = 20000;
  /// When set, the detector is a streaming change-point detector (CUSUM or
  /// adaptive-EWMA, cpd.hpp): per-sample sequential, windowless — it scores
  /// every PIAT as it arrives and reports TimeToDetection instead of a
  /// confusion matrix. Mutually exclusive with `edf`; two classes only.
  std::optional<CpdConfig> cpd;
};

/// One streaming detection pipeline: accumulator → features → classifier
/// (or window → nearest reference EDF). Owned and driven by DetectorBank.
class Detector {
 public:
  Detector(DetectorSpec spec, std::size_t num_classes);

  /// Deep copy (accumulators, window buffers, classifier, confusion): the
  /// checkpoint/fork primitive. Cost is O(detector state), independent of
  /// how much of the stream has been consumed.
  Detector(const Detector& other);
  Detector& operator=(const Detector& other);
  Detector(Detector&&) noexcept = default;
  Detector& operator=(Detector&&) noexcept = default;
  ~Detector() = default;

  [[nodiscard]] const DetectorSpec& spec() const { return spec_; }
  [[nodiscard]] bool is_edf() const { return spec_.edf.has_value(); }
  [[nodiscard]] bool is_cpd() const { return spec_.cpd.has_value(); }
  /// "sample entropy", "EDF nearest (KS)", "cusum", ...
  [[nodiscard]] std::string name() const;

  /// True until an entropy detector without an explicit Δh gets one.
  [[nodiscard]] bool needs_bin_width() const;
  void set_bin_width(double bin_width);
  /// The Δh in use (entropy detectors, after auto-selection).
  [[nodiscard]] double entropy_bin_width() const { return bin_width_; }

  void consume_training(std::size_t class_index, std::span<const double> batch);
  void train(const std::vector<double>& priors);
  [[nodiscard]] bool trained() const { return trained_; }

  void consume_test(std::size_t true_class, std::span<const double> batch);

  /// Arm run-time checkpoints at ascending per-class test-prefix lengths
  /// (PIAT counts ≥ 1). One-shot; must be called before any consume_test.
  void arm_checkpoints(std::vector<std::size_t> test_prefixes);

  /// Confusion as if only the first `prefix` test PIATs of EACH class had
  /// been consumed. `prefix` must be an armed checkpoint; a class that has
  /// not yet reached it contributes its current counts (= everything it
  /// was given, exactly what a fresh bank fed the same short stream holds).
  [[nodiscard]] ConfusionMatrix confusion_at(std::size_t prefix) const;

  [[nodiscard]] const ConfusionMatrix& confusion() const { return confusion_; }
  /// Prior-weighted detection rate of the windows consumed so far.
  [[nodiscard]] double detection_rate() const;

  /// Training feature values per class (feature detectors; for CPD
  /// detectors this pool holds the capped RAW training PIATs instead).
  [[nodiscard]] const std::vector<std::vector<double>>& training_features()
      const {
    return training_features_;
  }
  /// The fitted per-feature Bayes rule (feature detectors only).
  [[nodiscard]] const BayesClassifier& classifier() const;

  /// The trained change-point model (CPD detectors only, after train()).
  [[nodiscard]] const CpdModel& cpd_model() const;
  /// Scheme + threshold + TimeToDetection over everything consumed so far
  /// (CPD detectors only).
  [[nodiscard]] CpdOutcome cpd_outcome() const;
  /// Like cpd_outcome(), as if only the first `prefix` test PIATs of each
  /// class had been consumed; `prefix` must be an armed checkpoint —
  /// bit-identical to stopping a fresh detector there.
  [[nodiscard]] CpdOutcome cpd_outcome_at(std::size_t prefix) const;

 private:
  friend class DetectorBank;

  void prepare();  // build accumulators once the bin width is known
  void feed(std::size_t class_index, std::span<const double> batch,
            bool testing);
  void feed_chunk(std::size_t class_index, std::span<const double> chunk,
                  bool testing);
  void complete_window(std::size_t class_index, bool testing);
  void classify_edf_window(std::size_t true_class);
  void thin_reference(std::vector<double>& reference) const;
  [[nodiscard]] std::size_t window_fill(std::size_t class_index) const;

  DetectorSpec spec_;
  std::size_t num_classes_;
  double bin_width_ = 0.0;
  bool prepared_ = false;
  bool trained_ = false;

  // Per-class streaming window state (accumulator OR edf window buffer).
  std::vector<std::unique_ptr<WindowAccumulator>> accumulators_;
  std::vector<std::vector<double>> window_buffers_;  // EDF mode

  std::vector<std::vector<double>> training_features_;  // feature mode
  std::vector<std::vector<double>> references_;         // EDF mode, sorted
  std::vector<double> priors_;
  std::optional<BayesClassifier> classifier_;
  ConfusionMatrix confusion_;

  // CPD mode: the trained model plus one mid-stream state per true class
  // (the detector watches each class's test stream independently).
  std::optional<CpdModel> cpd_model_;
  std::vector<CpdClassState> cpd_states_;

  // Armed test-prefix checkpoints: when class c's consumed test count
  // crosses checkpoints_[i], row c of the confusion is snapshotted into
  // checkpoint_rows_[c][i] (rows are per-true-class, so per-class
  // snapshots assemble into the full prefix confusion). CPD detectors
  // snapshot their per-class CpdClassState into cpd_rows_ instead.
  std::vector<std::size_t> checkpoints_;  // ascending, deduplicated
  std::vector<std::size_t> test_consumed_;     // per class
  std::vector<std::size_t> next_checkpoint_;   // per class, index
  std::vector<std::vector<std::vector<std::uint64_t>>> checkpoint_rows_;
  std::vector<std::vector<CpdClassState>> cpd_rows_;
};

/// Evaluates all configured detectors over a single pass of the stream.
class DetectorBank {
 public:
  DetectorBank(std::vector<DetectorSpec> specs, std::size_t num_classes);

  /// Convenience: one feature detector per kind, sharing `base`'s window
  /// size / entropy / density knobs.
  DetectorBank(const AdversaryConfig& base,
               const std::vector<FeatureKind>& features,
               std::size_t num_classes);

  /// Deep-copyable: all detectors (including partially-consumed window
  /// state) are cloned. See checkpoint().
  DetectorBank(const DetectorBank& other);
  DetectorBank& operator=(const DetectorBank& other);
  DetectorBank(DetectorBank&&) noexcept = default;
  DetectorBank& operator=(DetectorBank&&) noexcept = default;
  ~DetectorBank() = default;

  /// True when some entropy detector needs the pooled-training-data Δh
  /// prepass before training can start.
  [[nodiscard]] bool needs_prepass() const;

  /// Feed ALL training data once (class order, for bit-identity with
  /// Adversary::train's pooled statistics), then finish_prepass().
  void consume_prepass(std::span<const double> batch);
  void finish_prepass();

  /// Finish the prepass from externally accumulated pooled training
  /// moments instead of consume_prepass. The prefix-replay engine computes
  /// per-prefix moments with ONE shared Welford stream plus fork()s at the
  /// prefix boundaries, then hands each bank its snapshot — identical
  /// numbers to consuming the clipped stream, at a fraction of the adds.
  void finish_prepass(const stats::RunningStats& pooled);

  void consume_training(std::size_t class_index, std::span<const double> batch);

  /// Fit every detector. Empty priors = equal.
  void train(std::vector<double> priors = {});
  [[nodiscard]] bool trained() const;

  void consume_test(std::size_t true_class, std::span<const double> batch);

  /// Arm every detector with run-time checkpoints at the given ascending
  /// per-class test-prefix lengths (PIAT counts). One capture pass then
  /// emits outcomes at every prefix via evaluate_at(). Must be called
  /// before the first consume_test.
  void arm_checkpoints(std::vector<std::size_t> test_prefixes);

  /// Per-detector confusion (detector order) as if only the first `prefix`
  /// test PIATs of each class had been consumed — bit-identical to feeding
  /// a fresh, identically-trained bank exactly that prefix. `prefix` must
  /// be an armed checkpoint.
  [[nodiscard]] std::vector<ConfusionMatrix> evaluate_at(
      std::size_t prefix) const;

  /// Deep snapshot of the whole bank, mid-stream state included. The fork
  /// and the original consume independently afterwards (fork semantics).
  [[nodiscard]] DetectorBank checkpoint() const { return *this; }

  [[nodiscard]] std::size_t size() const { return detectors_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] const Detector& detector(std::size_t i) const;

 private:
  std::vector<std::unique_ptr<Detector>> detectors_;
  std::size_t num_classes_;
  stats::RunningStats prepass_pooled_;
  bool prepass_finished_ = false;
};

}  // namespace linkpad::classify
