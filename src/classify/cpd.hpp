// Streaming sequential change-point detectors (CPD): two-sided CUSUM and
// adaptive-EWMA, the online attackers the batch detector family grows into.
//
// The paper's adversary (Sec 3.3) waits for a full n-PIAT window before
// deciding; a change-point attacker instead scores EVERY packet as it
// arrives and raises an alarm the moment the stream's statistics drift from
// the padded baseline. Two detectors, both per-sample sequential so they
// ride DetectorBank's one-pass protocol unchanged:
//
//  * CUSUM — Page's cumulative sum on log-likelihood-ratio increments from
//    the trained per-class densities (BayesClassifier::density). Each side
//    of the two-sided scheme targets one class: the "high" side accumulates
//    log f(x|ω_h) − log f(x|ω_l) and fires when the padded stream starts
//    looking like ω_h; the "low" side is its mirror. g ← max(0, g + inc),
//    alarm when g > h, then g ← 0 (Page's reset).
//  * adaptive-EWMA — the DoSTect scheme (SNIPPETS.md, Counter.compute_volume):
//    a CUSUM whose presumed post-change mean tracks an exponentially
//    weighted moving average of the stream itself, so the detector
//    self-tunes to slow drifts: g ← max(0, g + (δ·μ/σ²)(x − μ − δ·μ/2))
//    with δ = ±alpha (sign = direction of the trained mean shift), then
//    μ ← beta·μ + (1−beta)·x. Under a perfectly equalizing defense the
//    trained means coincide, δ = 0, and the detector honestly never fires.
//
// Calibration is first-class: calibrate_threshold() sets h from a
// Monte-Carlo ARL₀ estimate — T bootstrap replays of the NULL class's
// training samples over a fixed horizon, h = the (1 − target_far) quantile
// of the per-trial maximum statistic, so P(false alarm within horizon) ≈
// target_far. The calibration is serial and seeded (the engine derives the
// root through core::derive_point_seed), so a calibrated threshold is
// bit-identical across thread counts, batch sizes, and shard layouts.
//
// Determinism wall: update() is a pure per-sample fold over POD state, so
// results are independent of batch boundaries; CpdClassState is trivially
// copyable, so checkpoint forks and arm_checkpoints/evaluate_at prefix
// snapshots reproduce a fresh detector bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "classify/bayes.hpp"
#include "classify/density_model.hpp"
#include "util/types.hpp"

namespace linkpad::classify {

/// Which sequential change-point scheme a detector runs.
enum class CpdKind { kCusum, kAdaptiveEwma };

/// "cusum" / "adaptive-ewma".
[[nodiscard]] std::string cpd_kind_name(CpdKind kind);

/// Configuration of one streaming change-point detector.
struct CpdConfig {
  CpdKind kind = CpdKind::kCusum;

  /// Decision threshold h (alarm when g > h, strictly). Used as-is when
  /// target_far == 0; replaced by the calibrated value otherwise. The
  /// DoSTect reference ships h = 10.
  double threshold = 10.0;

  /// Adaptive-EWMA knobs (DoSTect): presumed drift magnitude as a fraction
  /// of the running mean, and the EWMA smoothing factor.
  double ewma_alpha = 0.5;
  double ewma_beta = 0.95;

  /// Density model for the CUSUM LLR increments. Defaults to the
  /// parametric Gaussian fit — unlike the window classifiers, a CPD update
  /// runs per PIAT, and a KDE log-pdf (O(training set) per evaluation)
  /// would also make the Monte-Carlo calibration quadratic.
  DensityKind density = DensityKind::kGaussian;
  stats::BandwidthRule bandwidth = stats::BandwidthRule::kSilverman;
  double fixed_bandwidth = 0.0;

  /// Cap on the per-class raw-PIAT training pool (first-k, so the pool is
  /// independent of training batch boundaries).
  std::size_t max_training_samples = 4096;

  /// Monte-Carlo ARL₀ calibration: when target_far > 0, train() replaces
  /// `threshold` with the h that achieves P(false alarm within `horizon`
  /// null samples) ≈ target_far over `trials` bootstrap replays seeded
  /// from `calibration_seed`.
  double target_far = 0.0;
  std::size_t horizon = 2000;
  std::size_t trials = 400;
  std::uint64_t calibration_seed = 20030324;

  /// "cusum" or "adaptive-ewma" (the detector-bank display name).
  [[nodiscard]] std::string name() const { return cpd_kind_name(kind); }
};

/// Headline outcome of one change-point detector over the test streams:
/// did every class stream trip its targeting side, after how many PIATs in
/// the worst case, and how many wrong-side (false) alarms fired meanwhile.
struct TimeToDetection {
  bool detected = false;
  /// Worst first-crossing over the class streams (1-based PIAT index);
  /// 0 when not every stream was detected.
  std::size_t n_at_detection = 0;
  /// Wrong-side crossings summed over all class streams (each side resets
  /// after an alarm, so repeated false alarms all count).
  std::size_t false_alarms = 0;
};

/// One detector's reportable result: scheme, the threshold actually in use
/// (post-calibration), and the time-to-detection outcome.
struct CpdOutcome {
  CpdKind kind = CpdKind::kCusum;
  double threshold = 0.0;
  TimeToDetection ttd;
};

/// One side of the two-sided scheme mid-stream. Trivially copyable — the
/// whole checkpoint/fork story for CPD detectors is a struct copy.
struct CpdSideState {
  double g = 0.0;       ///< decision statistic
  double mean = 0.0;    ///< adaptive-EWMA running mean (unused by CUSUM)
  std::size_t first_alarm = 0;  ///< 1-based sample index; 0 = never
  std::size_t alarms = 0;       ///< total crossings (g resets after each)
};

/// Full per-stream detector state: both sides plus the sample counter.
struct CpdClassState {
  CpdSideState high;  ///< targets ω_h (null: ω_l)
  CpdSideState low;   ///< targets ω_l (null: ω_h)
  std::size_t n = 0;  ///< samples consumed
};

/// Trained change-point model: fixed parameters (densities / EWMA moments /
/// threshold) shared by every stream the detector watches. Copyable, so a
/// detector bank fork clones it wholesale.
class CpdModel {
 public:
  /// Side index of the one-sided statistic targeting ω_h resp. ω_l.
  static constexpr std::size_t kSideHigh = 0;
  static constexpr std::size_t kSideLow = 1;

  /// Fit from per-class raw training samples (exactly two classes). Runs
  /// the Monte-Carlo threshold calibration when config.target_far > 0.
  [[nodiscard]] static CpdModel train(
      const CpdConfig& config,
      const std::vector<std::vector<double>>& class_samples);

  /// Fresh mid-stream state (per side: g = 0, μ = its null-class mean).
  [[nodiscard]] CpdClassState initial_state() const;

  /// One per-sample update of both sides: advance g (and μ), then apply
  /// the threshold — alarm bookkeeping + Page reset. A pure fold: the
  /// result depends only on (state, sample sequence), never on batching.
  void update(CpdClassState& state, double x) const;

  /// Max of side `side`'s statistic over a replayed stream, from a fresh
  /// state and WITHOUT threshold resets — the per-trial Monte-Carlo
  /// quantity (first alarm at h iff this max exceeds h).
  [[nodiscard]] double max_statistic(std::size_t side,
                                     std::span<const double> stream) const;

  /// Assemble the outcome from the per-class stream states: class c's
  /// stream must trip the side TARGETING c; the opposite side's crossings
  /// are false alarms.
  [[nodiscard]] TimeToDetection time_to_detection(
      std::span<const CpdClassState> per_class) const;

  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] const CpdConfig& config() const { return config_; }

 private:
  CpdModel() = default;

  /// Advance one side by one sample (statistic + EWMA mean), no threshold.
  void advance(std::size_t side, CpdSideState& state, double x) const;

  struct EwmaSide {
    double mean0 = 0.0;  ///< null-class training mean (μ's start value)
    double var = 1.0;    ///< null-class training variance (floored)
    double drift = 0.0;  ///< δ = ±alpha (0 when the means coincide)
  };

  CpdConfig config_;
  double threshold_ = 0.0;
  std::optional<BayesClassifier> classifier_;  ///< CUSUM densities
  std::array<EwmaSide, 2> ewma_{};             ///< indexed by kSide*
};

/// Monte-Carlo ARL₀ threshold calibration for an already-parameterized
/// model: T = config.trials bootstrap replays of the null-class samples
/// (side high replays class ω_l, side low replays ω_h) over
/// config.horizon samples each; returns the (1 − target_far) empirical
/// quantile of the per-trial max statistic. Serial and fully determined by
/// (model parameters, class_samples, config.calibration_seed).
[[nodiscard]] double calibrate_threshold(
    const CpdModel& model,
    const std::vector<std::vector<double>>& class_samples, double target_far,
    std::size_t horizon, std::size_t trials, std::uint64_t seed);

}  // namespace linkpad::classify
