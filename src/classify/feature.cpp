#include "classify/feature.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace linkpad::classify {

std::string feature_name(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kSampleMean: return "sample mean";
    case FeatureKind::kSampleVariance: return "sample variance";
    case FeatureKind::kSampleEntropy: return "sample entropy";
    case FeatureKind::kMedianAbsDeviation: return "MAD";
    case FeatureKind::kInterquartileRange: return "IQR";
  }
  return "unknown";
}

double SampleMeanFeature::extract(std::span<const double> window) const {
  return stats::mean(window);
}

double SampleVarianceFeature::extract(std::span<const double> window) const {
  // stats::sample_variance runs the same Welford recurrence the streaming
  // VarianceAccumulator performs, so batch and streaming feature values
  // are bit-identical (DESIGN.md §2.5).
  return stats::sample_variance(window);
}

SampleEntropyFeature::SampleEntropyFeature(double bin_width,
                                           stats::EntropyBias bias)
    : bin_width_(bin_width), bias_(bias) {
  LINKPAD_EXPECTS(bin_width > 0.0);
}

double SampleEntropyFeature::extract(std::span<const double> window) const {
  return stats::sample_entropy(window, bin_width_, bias_);
}

double MadFeature::extract(std::span<const double> window) const {
  return stats::mad(window);
}

double IqrFeature::extract(std::span<const double> window) const {
  return stats::iqr(window);
}

std::unique_ptr<FeatureExtractor> make_feature(FeatureKind kind,
                                               double entropy_bin_width,
                                               stats::EntropyBias bias) {
  switch (kind) {
    case FeatureKind::kSampleMean:
      return std::make_unique<SampleMeanFeature>();
    case FeatureKind::kSampleVariance:
      return std::make_unique<SampleVarianceFeature>();
    case FeatureKind::kSampleEntropy:
      // Catch callers that forgot to select a bin width: a defaulted 0.0
      // here means the Δh auto-selection of Adversary::train /
      // DetectorBank was bypassed, never a legitimate configuration.
      LINKPAD_EXPECTS(entropy_bin_width > 0.0 &&
                      "kSampleEntropy needs entropy_bin_width > 0 (set "
                      "AdversaryConfig::entropy_bin_width or train via "
                      "Adversary/DetectorBank for Scott-rule auto-selection)");
      return std::make_unique<SampleEntropyFeature>(entropy_bin_width, bias);
    case FeatureKind::kMedianAbsDeviation:
      return std::make_unique<MadFeature>();
    case FeatureKind::kInterquartileRange:
      return std::make_unique<IqrFeature>();
  }
  return nullptr;
}

}  // namespace linkpad::classify
