#include "classify/search.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace linkpad::classify {

namespace {

/// Only the streaming quantile features consult QuantileMode; expanding the
/// axis for the others would enumerate byte-identical duplicates.
bool uses_quantile_mode(FeatureKind kind) {
  return kind == FeatureKind::kMedianAbsDeviation ||
         kind == FeatureKind::kInterquartileRange;
}

}  // namespace

std::size_t DetectorSearchSpace::size() const {
  std::size_t feature_points = 0;
  for (const auto kind : features) {
    feature_points += uses_quantile_mode(kind) ? quantile_modes.size() : 1;
  }
  return feature_points * window_sizes.size() +
         edf_distances.size() * window_sizes.size() + cpd_target_fars.size();
}

std::vector<DetectorSpec> DetectorSearchSpace::expand() const {
  LINKPAD_EXPECTS(!features.empty());
  LINKPAD_EXPECTS(!window_sizes.empty());
  LINKPAD_EXPECTS(!quantile_modes.empty());
  for (const std::size_t n : window_sizes) LINKPAD_EXPECTS(n >= 2);
  for (const double far : cpd_target_fars) {
    LINKPAD_EXPECTS(far > 0.0 && far < 1.0);
  }

  std::vector<DetectorSpec> candidates;
  candidates.reserve(size());
  for (const auto kind : features) {
    for (const std::size_t n : window_sizes) {
      const std::size_t modes =
          uses_quantile_mode(kind) ? quantile_modes.size() : 1;
      for (std::size_t m = 0; m < modes; ++m) {
        DetectorSpec spec;
        spec.adversary = base;
        spec.adversary.feature = kind;
        spec.adversary.window_size = n;
        if (uses_quantile_mode(kind)) spec.quantile_mode = quantile_modes[m];
        candidates.push_back(std::move(spec));
      }
    }
  }
  for (const auto distance : edf_distances) {
    for (const std::size_t n : window_sizes) {
      DetectorSpec spec;
      spec.adversary = base;
      spec.adversary.window_size = n;
      spec.edf = distance;
      spec.edf_max_reference = edf_max_reference;
      candidates.push_back(std::move(spec));
    }
  }
  for (const double far : cpd_target_fars) {
    DetectorSpec spec;
    spec.adversary = base;
    spec.cpd = cpd_base;
    spec.cpd->target_far = far;
    candidates.push_back(std::move(spec));
  }
  LINKPAD_ENSURES(candidates.size() == size());
  return candidates;
}

std::string candidate_label(const DetectorSpec& spec) {
  // Detector::name() is the display-name seam every table shares; reuse it
  // by constructing a throwaway detector? No — Detector construction
  // validates and allocates accumulators. Mirror the naming rule instead.
  char buf[64];
  if (spec.cpd) {
    std::snprintf(buf, sizeof(buf), "%s @far=%g", spec.cpd->name().c_str(),
                  spec.cpd->target_far);
    return buf;
  }
  std::string name;
  if (spec.edf) {
    name = spec.edf == EdfDistance::kKolmogorovSmirnov ? "EDF nearest (KS)"
                                                       : "EDF nearest (CvM)";
  } else {
    name = feature_name(spec.adversary.feature);
  }
  std::snprintf(buf, sizeof(buf), " @n=%zu", spec.adversary.window_size);
  name += buf;
  if (!spec.edf && spec.quantile_mode == QuantileMode::kP2Sketch) {
    name += " (p2)";
  }
  return name;
}

}  // namespace linkpad::classify
