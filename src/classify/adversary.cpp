#include "classify/adversary.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace linkpad::classify {

Adversary::Adversary(const AdversaryConfig& config) : config_(config) {
  LINKPAD_EXPECTS(config.window_size >= 2);
}

std::vector<std::span<const double>> Adversary::windows_of(
    std::span<const double> stream, std::size_t n) {
  std::vector<std::span<const double>> out;
  const std::size_t count = stream.size() / n;
  out.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    out.push_back(stream.subspan(w * n, n));
  }
  return out;
}

void Adversary::train(const std::vector<std::vector<double>>& class_streams,
                      std::vector<double> priors) {
  LINKPAD_EXPECTS(class_streams.size() >= 2);
  if (priors.empty()) {
    priors.assign(class_streams.size(),
                  1.0 / static_cast<double>(class_streams.size()));
  }
  LINKPAD_EXPECTS(priors.size() == class_streams.size());

  // Δh for the entropy feature: fixed once, from pooled training data,
  // using Scott's histogram bin rule at the window size.
  bin_width_ = config_.entropy_bin_width;
  if (config_.feature == FeatureKind::kSampleEntropy && bin_width_ <= 0.0) {
    stats::RunningStats pooled;
    for (const auto& stream : class_streams) {
      for (double x : stream) pooled.add(x);
    }
    LINKPAD_EXPECTS(pooled.count() >= 2);
    const double n = static_cast<double>(config_.window_size);
    bin_width_ = 3.49 * pooled.stddev() * std::pow(n, -1.0 / 3.0);
    LINKPAD_ENSURES(bin_width_ > 0.0);
  }
  extractor_ =
      make_feature(config_.feature, bin_width_, config_.entropy_bias);

  training_features_.clear();
  training_features_.reserve(class_streams.size());
  for (const auto& stream : class_streams) {
    const auto windows = windows_of(stream, config_.window_size);
    LINKPAD_EXPECTS(windows.size() >= 2);
    std::vector<double> features;
    features.reserve(windows.size());
    for (const auto& w : windows) features.push_back(extractor_->extract(w));
    training_features_.push_back(std::move(features));
  }

  priors_ = priors;
  classifier_ =
      BayesClassifier::train(training_features_, priors_, config_.density,
                             config_.bandwidth, config_.fixed_bandwidth);
}

const BayesClassifier& Adversary::classifier() const {
  LINKPAD_EXPECTS(classifier_.has_value());
  return *classifier_;
}

double Adversary::feature_of(std::span<const double> window) const {
  LINKPAD_EXPECTS(extractor_ != nullptr);
  LINKPAD_EXPECTS(window.size() >= config_.window_size);
  return extractor_->extract(window.first(config_.window_size));
}

ClassLabel Adversary::classify_window(std::span<const double> window) const {
  LINKPAD_EXPECTS(classifier_.has_value());
  return classifier_->classify(feature_of(window));
}

ConfusionMatrix Adversary::evaluate(
    const std::vector<std::vector<double>>& class_test_streams) const {
  LINKPAD_EXPECTS(classifier_.has_value());
  LINKPAD_EXPECTS(class_test_streams.size() == classifier_->num_classes());

  ConfusionMatrix cm(class_test_streams.size());
  for (std::size_t c = 0; c < class_test_streams.size(); ++c) {
    for (const auto& w :
         windows_of(class_test_streams[c], config_.window_size)) {
      cm.add(static_cast<ClassLabel>(c), classifier_->classify(extractor_->extract(w)));
    }
  }
  return cm;
}

double Adversary::detection_rate(
    const std::vector<std::vector<double>>& class_test_streams) const {
  return evaluate(class_test_streams).detection_rate(priors_);
}

}  // namespace linkpad::classify
