#include "classify/sequential.hpp"

#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace linkpad::classify {

SequentialDetector::SequentialDetector(const Adversary& adversary,
                                       const SequentialConfig& config)
    : adversary_(adversary), config_(config) {
  LINKPAD_EXPECTS(adversary.trained());
  LINKPAD_EXPECTS(adversary.classifier().num_classes() == 2);
  LINKPAD_EXPECTS(adversary.config().window_size == config.batch_size);
  LINKPAD_EXPECTS(config.alpha > 0.0 && config.alpha < 0.5);
  LINKPAD_EXPECTS(config.beta > 0.0 && config.beta < 0.5);
  LINKPAD_EXPECTS(config.batch_size >= 2);
  LINKPAD_EXPECTS(config.max_batches >= 1);

  upper_ = std::log((1.0 - config.beta) / config.alpha);
  lower_ = std::log(config.beta / (1.0 - config.alpha));

  // Mean LLR increment per batch under each class, estimated on the
  // adversary's own training features (he owns the replica, so this is
  // within the threat model).
  const auto& clf = adversary_.classifier();
  auto mean_increment = [&](const std::vector<double>& features) {
    double acc = 0.0;
    for (double s : features) {
      acc += clf.density(1).log_pdf(s) - clf.density(0).log_pdf(s);
    }
    return acc / static_cast<double>(features.size());
  };
  mean_llr_low_ = mean_increment(adversary_.training_features()[0]);
  mean_llr_high_ = mean_increment(adversary_.training_features()[1]);
}

SequentialOutcome SequentialDetector::decide(
    std::span<const double> stream) const {
  const auto& clf = adversary_.classifier();
  const std::size_t n = config_.batch_size;
  const std::size_t batches =
      std::min(stream.size() / n, config_.max_batches);

  SequentialOutcome out;
  double llr = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    const double s = adversary_.feature_of(stream.subspan(b * n, n));
    llr += clf.density(1).log_pdf(s) - clf.density(0).log_pdf(s);
    ++out.batches_used;
    if (llr >= upper_) {
      out.decided = true;
      out.decision = 1;
      break;
    }
    if (llr <= lower_) {
      out.decided = true;
      out.decision = 0;
      break;
    }
  }
  out.piats_used = out.batches_used * n;
  out.final_llr = llr;
  return out;
}

double SequentialDetector::expected_batches(ClassLabel truth) const {
  LINKPAD_EXPECTS(truth == 0 || truth == 1);
  const double a = config_.alpha;
  const double b = config_.beta;
  // Wald: E_0[N] ≈ [(1−a)·lower + a·upper] / E_0[inc],
  //       E_1[N] ≈ [b·lower + (1−b)·upper] / E_1[inc].
  // A weak adversary whose trained densities do not separate on his own
  // training features has a drift of the wrong sign (or zero) — the walk
  // never trends toward the correct boundary, so the expectation is "never":
  // +inf, not a crash. (decide() still terminates via max_batches.)
  if (truth == 0) {
    if (!(mean_llr_low_ < 0.0)) return std::numeric_limits<double>::infinity();
    return ((1.0 - a) * lower_ + a * upper_) / mean_llr_low_;
  }
  if (!(mean_llr_high_ > 0.0)) return std::numeric_limits<double>::infinity();
  return (b * lower_ + (1.0 - b) * upper_) / mean_llr_high_;
}

}  // namespace linkpad::classify
