// Scalar root finding (Brent's method) — used to invert detection-rate
// curves (n(p) of Fig 5b, σ_T design targets).
#pragma once

#include <functional>

namespace linkpad::analysis {

/// Find x in [a, b] with f(x) = 0; requires sign(f(a)) != sign(f(b)).
/// Brent's method: bisection safety with secant/inverse-quadratic speed.
double find_root(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-12, int max_iter = 200);

/// Expand [a, b] geometrically upward until f changes sign, then solve.
/// Used when only a lower starting point is known (e.g. n ≥ 2).
double find_root_expanding(const std::function<double(double)>& f, double a,
                           double b0, double tol = 1e-12,
                           double expand_limit = 1e18);

}  // namespace linkpad::analysis
