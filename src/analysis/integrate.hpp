// Adaptive Simpson quadrature — used for the numeric Bayes-error integrals
// over KDE-estimated densities (eq. 5/7 when no closed form applies).
#pragma once

#include <functional>

namespace linkpad::analysis {

/// Integrate f over [a, b] with adaptive Simpson to absolute tolerance
/// `tol`. `max_depth` bounds recursion (each level halves the interval).
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10, int max_depth = 40);

}  // namespace linkpad::analysis
