#include "analysis/overhead.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace linkpad::analysis {

PaddingCost padding_cost(Seconds tau, PacketsPerSecond payload_peak,
                         int wire_bytes) {
  LINKPAD_EXPECTS(tau > 0.0);
  LINKPAD_EXPECTS(payload_peak >= 0.0);
  LINKPAD_EXPECTS(wire_bytes > 0);

  PaddingCost cost;
  cost.wire_rate = 1.0 / tau;
  if (cost.wire_rate < payload_peak) {
    throw std::invalid_argument(
        "padding_cost: wire rate below peak payload rate — the gateway "
        "queue would grow without bound");
  }
  cost.dummy_fraction = 1.0 - payload_peak / cost.wire_rate;
  cost.wire_bandwidth_bps = cost.wire_rate * wire_bytes * 8.0;
  cost.overhead_bps = cost.wire_bandwidth_bps - payload_peak * wire_bytes * 8.0;
  // A payload packet arriving at a uniformly random phase waits for the
  // next fire: mean τ/2, worst ≈ τ (queueing beyond that is negligible
  // while payload_peak < wire_rate; validated in the QoS integration test).
  cost.mean_payload_delay = tau / 2.0;
  cost.worst_payload_delay = tau;
  return cost;
}

std::vector<TradeoffPoint> padding_tradeoff(const DesignInputs& inputs,
                                            const std::vector<Seconds>& taus,
                                            int wire_bytes) {
  LINKPAD_EXPECTS(!taus.empty());
  std::vector<TradeoffPoint> points;
  points.reserve(taus.size());
  for (const Seconds tau : taus) {
    TradeoffPoint point;
    point.tau = tau;
    point.cost = padding_cost(tau, inputs.payload_peak, wire_bytes);

    DesignInputs in = inputs;
    in.tau = tau;
    point.design = design_padding_system(in);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace linkpad::analysis
