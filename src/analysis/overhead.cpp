#include "analysis/overhead.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace linkpad::analysis {

PaddingCost padding_cost(Seconds tau, PacketsPerSecond payload_peak,
                         int wire_bytes) {
  LINKPAD_EXPECTS(tau > 0.0);
  LINKPAD_EXPECTS(payload_peak >= 0.0);
  LINKPAD_EXPECTS(wire_bytes > 0);

  PaddingCost cost;
  cost.wire_rate = 1.0 / tau;
  if (cost.wire_rate < payload_peak) {
    throw std::invalid_argument(
        "padding_cost: wire rate below peak payload rate — the gateway "
        "queue would grow without bound");
  }
  cost.dummy_fraction = 1.0 - payload_peak / cost.wire_rate;
  cost.wire_bandwidth_bps = cost.wire_rate * wire_bytes * 8.0;
  cost.overhead_bps = cost.wire_bandwidth_bps - payload_peak * wire_bytes * 8.0;
  // A payload packet arriving at a uniformly random phase waits for the
  // next fire: mean τ/2, worst ≈ τ (queueing beyond that is negligible
  // while payload_peak < wire_rate; validated in the QoS integration test).
  cost.mean_payload_delay = tau / 2.0;
  cost.worst_payload_delay = tau;
  return cost;
}

PaddingCost budgeted_padding_cost(Seconds tau, PacketsPerSecond payload_peak,
                                  PacketsPerSecond dummy_budget,
                                  int wire_bytes) {
  LINKPAD_EXPECTS(tau > 0.0);
  LINKPAD_EXPECTS(payload_peak >= 0.0);
  LINKPAD_EXPECTS(dummy_budget >= 0.0);
  LINKPAD_EXPECTS(wire_bytes > 0);

  const PacketsPerSecond timer_rate = 1.0 / tau;
  if (timer_rate < payload_peak) {
    throw std::invalid_argument(
        "budgeted_padding_cost: timer rate below peak payload rate — the "
        "gateway queue would grow without bound");
  }
  PaddingCost cost;
  const PacketsPerSecond dummy_rate =
      std::min(dummy_budget, timer_rate - payload_peak);
  cost.wire_rate = payload_peak + dummy_rate;
  cost.dummy_fraction =
      cost.wire_rate > 0.0 ? dummy_rate / cost.wire_rate : 0.0;
  cost.wire_bandwidth_bps = cost.wire_rate * wire_bytes * 8.0;
  cost.overhead_bps = dummy_rate * wire_bytes * 8.0;
  // Payload still waits for the timer regardless of the dummy budget.
  cost.mean_payload_delay = tau / 2.0;
  cost.worst_payload_delay = tau;
  return cost;
}

std::vector<std::size_t> pareto_front(
    std::span<const std::pair<double, double>> points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) continue;
      const bool no_worse = points[j].first <= points[i].first &&
                            points[j].second <= points[i].second;
      const bool strictly_better = points[j].first < points[i].first ||
                                   points[j].second < points[i].second;
      dominated = no_worse && strictly_better;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<TradeoffPoint> padding_tradeoff(const DesignInputs& inputs,
                                            const std::vector<Seconds>& taus,
                                            int wire_bytes) {
  LINKPAD_EXPECTS(!taus.empty());
  std::vector<TradeoffPoint> points;
  points.reserve(taus.size());
  for (const Seconds tau : taus) {
    TradeoffPoint point;
    point.tau = tau;
    point.cost = padding_cost(tau, inputs.payload_peak, wire_bytes);

    DesignInputs in = inputs;
    in.tau = tau;
    point.design = design_padding_system(in);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace linkpad::analysis
