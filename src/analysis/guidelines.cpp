#include "analysis/guidelines.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "analysis/roots.hpp"
#include "util/check.hpp"

namespace linkpad::analysis {

namespace {

// Security design must not rely on the paper's Chebyshev-style Theorem 2/3
// approximations: they underestimate the adversary near r ≈ 1 (see
// theory.hpp). We bound every studied feature by the LARGER of the theorem
// estimate and the CLT sampling-law rate.
double worst_feature_rate(double r, double n) {
  return std::max({detection_rate_mean_exact(r),
                   detection_rate_variance(r, n),
                   detection_rate_entropy(r, n),
                   detection_rate_variance_clt(r, n),
                   detection_rate_entropy_clt(r, n)});
}

}  // namespace

double required_ratio_for(double n_max, double v_max) {
  LINKPAD_EXPECTS(n_max >= 2.0);
  LINKPAD_EXPECTS(v_max > 0.5 && v_max < 1.0);

  auto gap = [&](double r) { return worst_feature_rate(r, n_max) - v_max; };
  // worst_feature_rate is increasing in r with value 0.5 at r = 1.
  const double r_lo = 1.0 + 1e-12;
  if (gap(r_lo) >= 0.0) return 1.0;
  return find_root_expanding(gap, r_lo, 1.0 + 1e-6, 1e-12, 1e12);
}

DesignRecommendation design_padding_system(const DesignInputs& in) {
  LINKPAD_EXPECTS(in.v_max > 0.5 && in.v_max < 1.0);
  LINKPAD_EXPECTS(in.tau > 0.0);
  LINKPAD_EXPECTS(in.sigma2_gw_low > 0.0);
  LINKPAD_EXPECTS(in.sigma2_gw_high >= in.sigma2_gw_low);
  LINKPAD_EXPECTS(in.sigma2_net >= 0.0);
  const double wire_rate = 1.0 / in.tau;
  if (wire_rate < in.payload_peak) {
    throw std::invalid_argument(
        "design_padding_system: timer interval too long to carry the peak "
        "payload rate (queue would grow without bound)");
  }

  DesignRecommendation rec;
  rec.required_ratio = required_ratio_for(in.n_max, in.v_max);

  const double a_low = in.sigma2_net + in.sigma2_gw_low;
  const double a_high = in.sigma2_net + in.sigma2_gw_high;

  double sigma2_timer = 0.0;
  if (a_high / a_low > rec.required_ratio) {
    // (σ_T² + a_high) / (σ_T² + a_low) = r*  ⇒  σ_T² = (a_high − r*·a_low)/(r*−1)
    sigma2_timer =
        (a_high - rec.required_ratio * a_low) / (rec.required_ratio - 1.0);
  }
  rec.sigma_timer = std::sqrt(std::max(sigma2_timer, 0.0));

  VarianceComponents vc;
  vc.sigma2_timer = sigma2_timer;
  vc.sigma2_net = in.sigma2_net;
  vc.sigma2_gw_low = in.sigma2_gw_low;
  vc.sigma2_gw_high = in.sigma2_gw_high;
  const double r = vc.ratio();

  rec.v_mean = detection_rate_mean_exact(r);
  rec.v_variance = std::max(detection_rate_variance(r, in.n_max),
                            detection_rate_variance_clt(r, in.n_max));
  rec.v_entropy = std::max(detection_rate_entropy(r, in.n_max),
                           detection_rate_entropy_clt(r, in.n_max));
  rec.wire_rate = wire_rate;
  rec.dummy_fraction = 1.0 - in.payload_peak / wire_rate;
  // A payload packet arriving at a random phase waits τ/2 on average for
  // the next timer fire (plus negligible queueing at the studied loads).
  rec.mean_queueing_delay = in.tau / 2.0;

  std::ostringstream why;
  why << "target v<=" << in.v_max << " up to n=" << in.n_max
      << " requires r<=" << rec.required_ratio << "; system r_CIT="
      << a_high / a_low << " => "
      << (sigma2_timer > 0.0
              ? "VIT with sigma_T=" + std::to_string(rec.sigma_timer * 1e6) +
                    "us"
              : std::string("CIT already suffices"))
      << "; achieved r=" << r;
  rec.rationale = why.str();
  return rec;
}

}  // namespace linkpad::analysis
