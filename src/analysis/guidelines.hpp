// Design guidelines (paper Sec 1 & 6): configure a padding system so the
// detection rate stays below a target against a bounded adversary.
//
// The designer knows (or measures) the gateway jitter variances σ_gw,l²,
// σ_gw,h² and the network noise σ_net² at the most exposed tap point, and
// assumes the adversary cannot collect more than n_max PIATs of one payload
// epoch (traffic rates do not persist forever — the paper's argument for
// why VIT wins). The guideline solves for the smallest timer spread σ_T
// that caps EVERY studied feature's detection rate at v_max.
#pragma once

#include <string>

#include "analysis/theory.hpp"
#include "util/types.hpp"

namespace linkpad::analysis {

/// Inputs to the design procedure.
struct DesignInputs {
  double sigma2_gw_low = 0.0;   ///< measured σ_gw,l² (s²)
  double sigma2_gw_high = 0.0;  ///< measured σ_gw,h² (s²)
  double sigma2_net = 0.0;      ///< σ_net² at the most exposed tap (s²)
  double n_max = 1e6;           ///< adversary's largest credible sample
  double v_max = 0.55;          ///< tolerated detection rate (0.5 … 1)
  Seconds tau = 10e-3;          ///< timer mean interval (QoS-driven)
  PacketsPerSecond payload_peak = 40.0;  ///< highest payload rate to carry
};

/// Result of the design procedure.
struct DesignRecommendation {
  double required_ratio = 1.0;   ///< largest admissible r
  Seconds sigma_timer = 0.0;     ///< recommended σ_T (0 ⇒ CIT is safe)
  double v_mean = 0.5;           ///< predicted rates at (r, n_max)
  double v_variance = 0.5;
  double v_entropy = 0.5;
  double dummy_fraction = 0.0;   ///< share of wire packets that are dummies
  double wire_rate = 0.0;        ///< packets/s on the wire
  Seconds mean_queueing_delay = 0.0;  ///< payload QoS cost of padding
  std::string rationale;         ///< human-readable summary
};

/// Largest variance ratio r such that mean/variance/entropy detection rates
/// all stay ≤ v_max for sample sizes up to n_max.
double required_ratio_for(double n_max, double v_max);

/// Full design procedure. Throws if v_max ≤ 0.5 (unreachable: 0.5 is the
/// random-guessing floor) or if the timer mean cannot carry payload_peak.
DesignRecommendation design_padding_system(const DesignInputs& inputs);

}  // namespace linkpad::analysis
