#include "analysis/theory.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/integrate.hpp"
#include "stats/descriptive.hpp"
#include "stats/special_math.hpp"
#include "util/check.hpp"

namespace linkpad::analysis {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// r treated as 1 below this gap: every formula's limit is v = 0.5.
constexpr double kUnitRatioEps = 1e-12;
}  // namespace

double VarianceComponents::ratio() const {
  const double denom = sigma2_timer + sigma2_net + sigma2_gw_low;
  LINKPAD_EXPECTS(denom > 0.0);
  return (sigma2_timer + sigma2_net + sigma2_gw_high) / denom;
}

double variance_ratio(double var_a, double var_b) {
  LINKPAD_EXPECTS(var_a > 0.0 && var_b > 0.0);
  // Orientation is irrelevant to a Bayes decision between the two classes;
  // downstream formulas assume r >= 1.
  const double r = var_b / var_a;
  return r >= 1.0 ? r : 1.0 / r;
}

double estimate_variance_ratio(std::span<const double> piats_low,
                               std::span<const double> piats_high) {
  return variance_ratio(stats::sample_variance(piats_low),
                        stats::sample_variance(piats_high));
}

// ------------------------------------------------------------- Theorem 1

double detection_rate_mean_exact(double r) {
  LINKPAD_EXPECTS(r > 0.0);
  if (r < 1.0) r = 1.0 / r;
  if (r - 1.0 < kUnitRatioEps) return 0.5;
  // Likelihood crossing of N(0,1) vs N(0,r) at |x| = a, a² = r·ln r/(r−1);
  // v = ½[P(|X₀| ≤ a) + P(|X₁| > a)] = ½ + Φ(a) − Φ(a/√r).
  const double a = std::sqrt(r * std::log(r) / (r - 1.0));
  return 0.5 + stats::normal_cdf(a) - stats::normal_cdf(a / std::sqrt(r));
}

double detection_rate_mean_paper(double r) {
  LINKPAD_EXPECTS(r > 0.0);
  if (r < 1.0) r = 1.0 / r;
  const double root = std::sqrt(r);
  return 1.0 - 1.0 / (root + 1.0 / root);
}

// ------------------------------------------------------------- Theorem 2

double variance_feature_constant(double r) {
  LINKPAD_EXPECTS(r > 0.0);
  if (r < 1.0) r = 1.0 / r;
  if (r - 1.0 < kUnitRatioEps) return kInf;
  const double lr = std::log(r);
  const double t1 = 1.0 - lr / (r - 1.0);          // distance of σ_l² to d
  const double t2 = r / (r - 1.0) * lr - 1.0;      // distance of σ_h² to d
  return 0.5 / (t1 * t1) + 0.5 / (t2 * t2);
}

double detection_rate_variance(double r, double n) {
  LINKPAD_EXPECTS(n >= 2.0);
  const double c = variance_feature_constant(r);
  if (!std::isfinite(c)) return 0.5;
  return std::max(1.0 - c / (n - 1.0), 0.5);
}

// ------------------------------------------------------------- Theorem 3

double entropy_feature_constant(double r) {
  LINKPAD_EXPECTS(r > 0.0);
  if (r < 1.0) r = 1.0 / r;
  if (r - 1.0 < kUnitRatioEps) return kInf;
  const double lr = std::log(r);
  const double u1 = std::log(r / (r - 1.0) * lr);  // log-scale distances
  const double u2 = std::log((r - 1.0) / lr);
  return 0.5 / (u1 * u1) + 0.5 / (u2 * u2);
}

double detection_rate_entropy(double r, double n) {
  LINKPAD_EXPECTS(n >= 2.0);
  const double c = entropy_feature_constant(r);
  if (!std::isfinite(c)) return 0.5;
  return std::max(1.0 - c / n, 0.5);
}

// --------------------------------------------------------------- n(p)

double sample_size_for_detection(classify::FeatureKind kind, double r,
                                 double p) {
  LINKPAD_EXPECTS(p > 0.0 && p < 1.0);
  if (r < 1.0) r = 1.0 / r;
  if (p <= 0.5) return 2.0;

  switch (kind) {
    case classify::FeatureKind::kSampleMean:
      // Sample size does not help the mean feature (Theorem 1, obs. 1).
      return detection_rate_mean_exact(r) >= p ? 2.0 : kInf;
    case classify::FeatureKind::kSampleVariance: {
      const double c = variance_feature_constant(r);
      if (!std::isfinite(c)) return kInf;
      return c / (1.0 - p) + 1.0;
    }
    case classify::FeatureKind::kSampleEntropy: {
      const double c = entropy_feature_constant(r);
      if (!std::isfinite(c)) return kInf;
      return c / (1.0 - p);
    }
    default:
      // Extension features have no closed form here.
      return kInf;
  }
}

// ---------------------------------------------------- generic Bayes theory

double bayes_detection_gaussians(const stats::Normal& f0,
                                 const stats::Normal& f1, double p0,
                                 double p1) {
  LINKPAD_EXPECTS(p0 > 0.0 && p1 > 0.0);
  LINKPAD_EXPECTS(std::abs(p0 + p1 - 1.0) < 1e-9);

  const double m0 = f0.mean(), s0 = f0.sigma();
  const double m1 = f1.mean(), s1 = f1.sigma();

  // g(x) = log(p0 f0) − log(p1 f1) = A x² + B x + C;  g ≥ 0 ⇒ decide class 0.
  const double A = 0.5 / (s1 * s1) - 0.5 / (s0 * s0);
  const double B = m0 / (s0 * s0) - m1 / (s1 * s1);
  const double C = 0.5 * m1 * m1 / (s1 * s1) - 0.5 * m0 * m0 / (s0 * s0) +
                   std::log(p0 * s1 / (p1 * s0));

  const double scale = std::max({std::abs(A) * s0 * s0, std::abs(B) * s0, 1.0});
  if (std::abs(A) * s0 * s0 < 1e-14 * scale) {
    // Equal variances: linear boundary (or none).
    if (std::abs(B) * s0 < 1e-14 * scale) {
      return std::max(p0, p1);  // identical densities: guess the bigger prior
    }
    const double x_star = -C / B;
    if (B > 0.0) {
      // class 0 region is x >= x_star
      return p0 * (1.0 - f0.cdf(x_star)) + p1 * f1.cdf(x_star);
    }
    return p0 * f0.cdf(x_star) + p1 * (1.0 - f1.cdf(x_star));
  }

  const double disc = B * B - 4.0 * A * C;
  if (disc <= 0.0) {
    // No real boundary: g keeps the sign of A everywhere.
    return A > 0.0 ? p0 : p1;
  }
  const double sq = std::sqrt(disc);
  double x1 = (-B - sq) / (2.0 * A);
  double x2 = (-B + sq) / (2.0 * A);
  if (x1 > x2) std::swap(x1, x2);

  if (A > 0.0) {
    // class 0 outside [x1, x2]
    return p0 * (f0.cdf(x1) + 1.0 - f0.cdf(x2)) +
           p1 * (f1.cdf(x2) - f1.cdf(x1));
  }
  // class 0 inside [x1, x2]
  return p0 * (f0.cdf(x2) - f0.cdf(x1)) +
         p1 * (f1.cdf(x1) + 1.0 - f1.cdf(x2));
}

double bayes_detection_numeric(const std::function<double(double)>& f0,
                               const std::function<double(double)>& f1,
                               double p0, double p1, double lo, double hi) {
  LINKPAD_EXPECTS(hi > lo);
  return integrate(
      [&](double x) { return std::max(p0 * f0(x), p1 * f1(x)); }, lo, hi,
      1e-9);
}

// ------------------------------------------------ feature sampling theory

stats::Normal feature_sampling_law(classify::FeatureKind kind, double mu,
                                   double sigma2, double n) {
  LINKPAD_EXPECTS(sigma2 > 0.0);
  LINKPAD_EXPECTS(n >= 2.0);
  switch (kind) {
    case classify::FeatureKind::kSampleMean:
      return stats::Normal(mu, std::sqrt(sigma2 / n));
    case classify::FeatureKind::kSampleVariance:
      return stats::Normal(sigma2, std::sqrt(2.0 * sigma2 * sigma2 / (n - 1.0)));
    case classify::FeatureKind::kSampleEntropy:
      return stats::Normal(stats::normal_differential_entropy(sigma2),
                           std::sqrt(0.5 / n));
    default:
      LINKPAD_EXPECTS(false && "no sampling law for extension features");
  }
  return stats::Normal(0.0, 1.0);  // unreachable
}

double predicted_detection_rate(classify::FeatureKind kind, double mu,
                                double sigma2_low, double sigma2_high,
                                double n) {
  const auto law_low = feature_sampling_law(kind, mu, sigma2_low, n);
  const auto law_high = feature_sampling_law(kind, mu, sigma2_high, n);
  return bayes_detection_gaussians(law_low, law_high, 0.5, 0.5);
}

double detection_rate_variance_clt(double r, double n) {
  LINKPAD_EXPECTS(n >= 3.0);
  if (r < 1.0) r = 1.0 / r;
  if (r - 1.0 < kUnitRatioEps) return 0.5;
  return predicted_detection_rate(classify::FeatureKind::kSampleVariance,
                                  0.0, 1.0, r, n);
}

double detection_rate_entropy_clt(double r, double n) {
  LINKPAD_EXPECTS(n >= 3.0);
  if (r < 1.0) r = 1.0 / r;
  if (r - 1.0 < kUnitRatioEps) return 0.5;
  return predicted_detection_rate(classify::FeatureKind::kSampleEntropy, 0.0,
                                  1.0, r, n);
}

}  // namespace linkpad::analysis
