// Padding cost accounting and the security/QoS/overhead trade-off
// (the NetCamo [9] concern the paper inherits: "the delay experienced by
// packets of a protected flow is tightly coupled to the bandwidth required
// to send both payload and dummy packets").
//
// Link padding pays twice: dummy bandwidth (wire rate 1/τ regardless of
// payload) and payload latency (a packet waits for the next timer fire).
// `padding_tradeoff` sweeps the timer mean τ and, at each point, runs the
// design procedure for the target leak bound — yielding the (overhead,
// delay, σ_T) frontier a deployment engineer picks from.
#pragma once

#include <vector>

#include "analysis/guidelines.hpp"
#include "util/types.hpp"

namespace linkpad::analysis {

/// Static padding costs at one operating point.
struct PaddingCost {
  PacketsPerSecond wire_rate = 0.0;    ///< 1/τ
  double dummy_fraction = 0.0;         ///< share of wire packets carrying no payload
  double wire_bandwidth_bps = 0.0;     ///< constant on-the-wire bandwidth
  double overhead_bps = 0.0;           ///< wire bandwidth minus peak payload bandwidth
  Seconds mean_payload_delay = 0.0;    ///< E[wait for next fire] = τ/2
  Seconds worst_payload_delay = 0.0;   ///< ≈ τ (arrival just after a fire)
};

/// Cost of running a padded link at timer mean `tau` carrying payload up to
/// `payload_peak` pps with constant `wire_bytes` packets. Throws when the
/// wire cannot carry the peak payload (1/τ < payload_peak).
PaddingCost padding_cost(Seconds tau, PacketsPerSecond payload_peak,
                         int wire_bytes);

/// One point on the security/QoS/overhead frontier.
struct TradeoffPoint {
  Seconds tau = 0.0;
  PaddingCost cost{};
  DesignRecommendation design{};  ///< σ_T etc. for the requested leak bound
};

/// Sweep timer means and design each point for the same DesignInputs
/// (v_max, n_max, measured jitter). `taus` must all satisfy
/// 1/τ ≥ inputs.payload_peak. Returns points in the order given.
std::vector<TradeoffPoint> padding_tradeoff(const DesignInputs& inputs,
                                            const std::vector<Seconds>& taus,
                                            int wire_bytes);

}  // namespace linkpad::analysis
