// Padding cost accounting and the security/QoS/overhead trade-off
// (the NetCamo [9] concern the paper inherits: "the delay experienced by
// packets of a protected flow is tightly coupled to the bandwidth required
// to send both payload and dummy packets").
//
// Link padding pays twice: dummy bandwidth (wire rate 1/τ regardless of
// payload) and payload latency (a packet waits for the next timer fire).
// `padding_tradeoff` sweeps the timer mean τ and, at each point, runs the
// design procedure for the target leak bound — yielding the (overhead,
// delay, σ_T) frontier a deployment engineer picks from.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "analysis/guidelines.hpp"
#include "util/types.hpp"

namespace linkpad::analysis {

/// Static padding costs at one operating point.
struct PaddingCost {
  PacketsPerSecond wire_rate = 0.0;    ///< 1/τ
  double dummy_fraction = 0.0;         ///< share of wire packets carrying no payload
  double wire_bandwidth_bps = 0.0;     ///< constant on-the-wire bandwidth
  double overhead_bps = 0.0;           ///< wire bandwidth minus peak payload bandwidth
  Seconds mean_payload_delay = 0.0;    ///< E[wait for next fire] = τ/2
  Seconds worst_payload_delay = 0.0;   ///< ≈ τ (arrival just after a fire)
};

/// Cost of running a padded link at timer mean `tau` carrying payload up to
/// `payload_peak` pps with constant `wire_bytes` packets. Throws when the
/// wire cannot carry the peak payload (1/τ < payload_peak).
PaddingCost padding_cost(Seconds tau, PacketsPerSecond payload_peak,
                         int wire_bytes);

/// One point on the security/QoS/overhead frontier.
struct TradeoffPoint {
  Seconds tau = 0.0;
  PaddingCost cost{};
  DesignRecommendation design{};  ///< σ_T etc. for the requested leak bound
};

/// Sweep timer means and design each point for the same DesignInputs
/// (v_max, n_max, measured jitter). `taus` must all satisfy
/// 1/τ ≥ inputs.payload_peak. Returns points in the order given.
std::vector<TradeoffPoint> padding_tradeoff(const DesignInputs& inputs,
                                            const std::vector<Seconds>& taus,
                                            int wire_bytes);

// ---------------------------------------------- defense-frontier hooks

/// Static cost model of BUDGETED (token-bucket) padding: the emitted dummy
/// rate is capped at `dummy_budget` pps, so the wire carries
/// payload + min(dummy_budget, 1/τ − payload) packets/sec. dummy_budget →
/// ∞ recovers padding_cost (full padding); dummy_budget = 0 is a bare wire
/// whose only cost is the timer's payload delay.
PaddingCost budgeted_padding_cost(Seconds tau, PacketsPerSecond payload_peak,
                                  PacketsPerSecond dummy_budget,
                                  int wire_bytes);

/// Indices of the Pareto-efficient points when BOTH coordinates are costs
/// to minimize — for the defense frontier: (padding overhead bps, adversary
/// detection rate). Point i is efficient iff no other point is ≤ in both
/// coordinates and < in at least one. Returned in input order; duplicate
/// coordinate pairs are all kept.
std::vector<std::size_t> pareto_front(
    std::span<const std::pair<double, double>> points);

}  // namespace linkpad::analysis
