#include "analysis/roots.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace linkpad::analysis {

double find_root(const std::function<double(double)>& f, double a, double b,
                 double tol, int max_iter) {
  LINKPAD_EXPECTS(b > a);
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if ((fa < 0.0) == (fb < 0.0)) {
    throw std::invalid_argument("find_root: f(a) and f(b) have the same sign");
  }

  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 0; iter < max_iter; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 = 2.0 * 1e-16 * std::abs(b) + 0.5 * tol;
    const double xm = 0.5 * (c - b);
    if (std::abs(xm) <= tol1 || fb == 0.0) return b;

    if (std::abs(e) >= tol1 && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic / secant interpolation.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * xm * q - std::abs(tol1 * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }

    a = b;
    fa = fb;
    b += (std::abs(d) > tol1) ? d : (xm > 0.0 ? tol1 : -tol1);
    fb = f(b);
    if ((fb < 0.0) == (fc < 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  return b;
}

double find_root_expanding(const std::function<double(double)>& f, double a,
                           double b0, double tol, double expand_limit) {
  LINKPAD_EXPECTS(b0 > a);
  const double fa = f(a);
  if (fa == 0.0) return a;
  double b = b0;
  while (b < expand_limit) {
    const double fb = f(b);
    if (fb == 0.0) return b;
    if ((fa < 0.0) != (fb < 0.0)) return find_root(f, a, b, tol);
    b *= 4.0;
  }
  throw std::invalid_argument("find_root_expanding: no sign change found");
}

}  // namespace linkpad::analysis
