// Closed-form detection-rate theory (paper Section 4).
//
// The padded stream's PIAT is modelled as X = T + δ_gw + δ_net (eq. 8) with
// every term normal, so X_l ~ N(µ, σ_l²) and X_h ~ N(µ, σ_h²) (eqs. 12–15)
// and everything depends on the variance ratio r = σ_h²/σ_l² ≥ 1 (eq. 16).
//
// Implemented results:
//  * Theorem 1 (sample mean): both the printed approximation and the EXACT
//    equal-mean two-Gaussian Bayes detection rate
//        v = 1/2 + Φ(a) − Φ(a/√r),  a = sqrt(r·ln r/(r−1)),
//    derived in docs/THEORY.md. (The published formula is typographically
//    ambiguous in the PDF; see DESIGN.md. We expose both.)
//  * Theorem 2 (sample variance), eqs. (20)–(21), exactly as printed.
//  * Theorem 3 (sample entropy), eqs. (22)–(23), exactly as printed.
//  * n(p): the sample size needed for detection rate p (Fig 5b).
//  * Exact Bayes detection rate between two arbitrary Gaussians (used for
//    the "Estimation" curves of Fig 4b via the feature sampling theory).
//  * Numeric Bayes detection rate between two arbitrary densities (eq. 7 by
//    quadrature; works on KDE models too).
//  * Feature sampling theory: the approximate Gaussian law of each feature
//    statistic over windows of size n.
#pragma once

#include <functional>

#include "classify/feature.hpp"
#include "stats/distributions.hpp"

namespace linkpad::analysis {

/// The four variance components of eq. (16).
struct VarianceComponents {
  double sigma2_timer = 0.0;    ///< σ_T² of the VIT interval (0 for CIT)
  double sigma2_net = 0.0;      ///< σ_net², network queueing noise at the tap
  double sigma2_gw_low = 0.0;   ///< σ_gw,l², gateway jitter at rate ω_l
  double sigma2_gw_high = 0.0;  ///< σ_gw,h², gateway jitter at rate ω_h

  /// r = (σ_T² + σ_net² + σ_gw,h²) / (σ_T² + σ_net² + σ_gw,l²), eq. (16).
  [[nodiscard]] double ratio() const;
};

/// Orientation-free variance ratio from two PRECOMPUTED positive variances:
/// max/min, so r ≥ 1 never fails downstream monotonicity assumptions. The
/// one place the Theorems 1–3 orientation convention lives — streaming
/// consumers with Welford moments call this instead of re-deriving it.
double variance_ratio(double var_a, double var_b);

/// r̂ from two measured PIAT samples (sample-variance ratio, oriented so
/// that r̂ ≥ 1 never fails downstream monotonicity assumptions).
double estimate_variance_ratio(std::span<const double> piats_low,
                               std::span<const double> piats_high);

// ----------------------------------------------------------- Theorem 1 --

/// Exact Bayes detection rate for equal-mean normals with variance ratio r.
/// Independent of sample size n (the paper's observation 1).
double detection_rate_mean_exact(double r);

/// The printed approximation of eq. (18): v ≈ 1 − 1/(√r + 1/√r)
/// (the unique reading with v(1)=1/2, v(∞)=1; tracks the exact form).
double detection_rate_mean_paper(double r);

// ----------------------------------------------------------- Theorem 2 --

/// C_Y of eq. (21).
double variance_feature_constant(double r);

/// Theorem 2, eq. (20): v_Y ≈ max(1 − C_Y/(n−1), 0.5).
double detection_rate_variance(double r, double n);

// ----------------------------------------------------------- Theorem 3 --

/// C_H̃ of eq. (23).
double entropy_feature_constant(double r);

/// Theorem 3, eq. (22): v_H̃ ≈ max(1 − C_H̃/n, 0.5).
double detection_rate_entropy(double r, double n);

// ------------------------------------------------------------- inverses --

/// Minimal sample size n(p) for feature `kind` to reach detection rate p
/// at variance ratio r. Returns +inf for the mean feature (its rate cannot
/// be raised by sampling more) and when r == 1. This is the quantity of
/// Fig 5(b).
double sample_size_for_detection(classify::FeatureKind kind, double r,
                                 double p);

// ------------------------------------------------- generic Bayes theory --

/// Exact two-class Bayes detection rate between arbitrary normals
/// f0 = N(µ0,σ0²), f1 = N(µ1,σ1²) with priors (p0, p1): solves the
/// likelihood-ratio boundary exactly (quadratic) and integrates with Φ.
double bayes_detection_gaussians(const stats::Normal& f0,
                                 const stats::Normal& f1, double p0,
                                 double p1);

/// Numeric Bayes detection rate ∫ max(p0·f0, p1·f1) over [lo, hi] by
/// adaptive quadrature — for KDE or any other density pair.
double bayes_detection_numeric(const std::function<double(double)>& f0,
                               const std::function<double(double)>& f1,
                               double p0, double p1, double lo, double hi);

// --------------------------------------------- feature sampling theory --

/// Approximate Gaussian law of a feature statistic computed over windows of
/// n i.i.d. N(µ, σ²) PIATs:
///   mean     ~ N(µ, σ²/n)                         (exact)
///   variance ~ N(σ², 2σ⁴/(n−1))                   (CLT on χ²)
///   entropy  ~ N(½ln(2πeσ²) + c(Δh), 1/(2n))      (delta method; the
///             bin-width offset c is common to both classes and irrelevant
///             to the Bayes boundary, so it is omitted)
stats::Normal feature_sampling_law(classify::FeatureKind kind, double mu,
                                   double sigma2, double n);

/// "Estimation" curve of Fig 4(b): predicted detection rate of `kind` at
/// window size n given the two PIAT variances, via the exact Gaussian Bayes
/// rate between the two feature sampling laws.
double predicted_detection_rate(classify::FeatureKind kind, double mu,
                                double sigma2_low, double sigma2_high,
                                double n);

// ------------------------------------------------- CLT (sampling-law) --

/// Detection rate of the variance feature from the CLT sampling laws
/// (exact Gaussian Bayes between N(1, 2/(n−1)) and N(r, 2r²/(n−1)); the
/// statistic is scale-invariant so only (r, n) matter).
///
/// NOTE: Theorems 2/3 are Chebyshev-style approximations; near r ≈ 1 they
/// substantially UNDERESTIMATE the adversary (e.g. r = 1.11, n = 800:
/// Theorem 2 says 51%, the CLT law — and the measured adversary — say
/// ~86%). Use these for security DESIGN; use the theorem forms to
/// reproduce the paper's curves. See docs/THEORY.md and the
/// `abl_theory_accuracy` bench.
double detection_rate_variance_clt(double r, double n);

/// CLT counterpart for the entropy feature (means ½ln r apart, common
/// std-dev ≈ sqrt(1/(2n))).
double detection_rate_entropy_clt(double r, double n);

}  // namespace linkpad::analysis
