#include "util/cli.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace linkpad::util {

namespace {

/// Strict whole-string parses; nullopt on any trailing junk. Shared by the
/// typed accessors AND parse()'s typed-option validation so both reject
/// exactly the same inputs.
std::optional<std::int64_t> parse_integer_text(const std::string& text) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(text, &used);
    if (used != text.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> parse_number_text(const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void ArgParser::declare(const std::string& name, Spec spec) {
  LINKPAD_EXPECTS(name.rfind("--", 0) == 0);
  LINKPAD_EXPECTS(!specs_.count(name));
  specs_[name] = std::move(spec);
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help_text) {
  declare(name, Spec{help_text, "false", Kind::kFlag});
}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help_text) {
  declare(name, Spec{help_text, default_value, Kind::kString});
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help_text) {
  declare(name, Spec{help_text, std::to_string(default_value), Kind::kInt});
}

void ArgParser::add_num(const std::string& name, double default_value,
                        const std::string& help_text) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", default_value);
  declare(name, Spec{help_text, buf, Kind::kNum});
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    std::string name = arg;
    std::optional<std::string> inline_value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) {
      std::cerr << program_ << ": unknown argument '" << arg << "'\n"
                << "Run with --help for usage.\n";
      return false;
    }
    if (it->second.kind == Kind::kFlag) {
      if (inline_value) {
        std::cerr << program_ << ": flag '" << name << "' takes no value\n";
        return false;
      }
      values_[name] = "true";
    } else if (inline_value) {
      values_[name] = *inline_value;
    } else {
      if (i + 1 >= argc) {
        std::cerr << program_ << ": option '" << name << "' needs a value\n";
        return false;
      }
      values_[name] = argv[++i];
    }
    // Typed options are validated HERE, while the offending token is still
    // attributable to the command line — not at first accessor use.
    if (it->second.kind == Kind::kInt &&
        !parse_integer_text(values_[name]).has_value()) {
      std::cerr << program_ << ": option '" << name << "': '" << values_[name]
                << "' is not an integer\n";
      return false;
    }
    if (it->second.kind == Kind::kNum &&
        !parse_number_text(values_[name]).has_value()) {
      std::cerr << program_ << ": option '" << name << "': '" << values_[name]
                << "' is not a number\n";
      return false;
    }
  }
  return true;
}

const ArgParser::Spec& ArgParser::spec_for(const std::string& name) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) {
    throw std::invalid_argument("undeclared option: " + name);
  }
  return it->second;
}

bool ArgParser::flag(const std::string& name) const {
  const Spec& spec = spec_for(name);
  LINKPAD_EXPECTS(spec.kind == Kind::kFlag);
  auto it = values_.find(name);
  return it != values_.end() && it->second == "true";
}

std::string ArgParser::str(const std::string& name) const {
  const Spec& spec = spec_for(name);
  auto it = values_.find(name);
  return it != values_.end() ? it->second : spec.default_value;
}

double ArgParser::num(const std::string& name) const {
  const std::string text = str(name);
  const auto v = parse_number_text(text);
  if (!v) {
    throw std::invalid_argument("option " + name + ": '" + text +
                                "' is not a number");
  }
  return *v;
}

std::int64_t ArgParser::integer(const std::string& name) const {
  const std::string text = str(name);
  const auto v = parse_integer_text(text);
  if (!v) {
    throw std::invalid_argument("option " + name + ": '" + text +
                                "' is not an integer");
  }
  return *v;
}

std::string ArgParser::help() const {
  std::ostringstream out;
  out << program_ << " — " << summary_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Spec& spec = specs_.at(name);
    out << "  " << name;
    switch (spec.kind) {
      case Kind::kFlag: break;
      case Kind::kString: out << " <value = " << spec.default_value << ">"; break;
      case Kind::kInt: out << " <int = " << spec.default_value << ">"; break;
      case Kind::kNum: out << " <num = " << spec.default_value << ">"; break;
    }
    out << "\n      " << spec.help << "\n";
  }
  out << "  --help\n      Show this message.\n";
  return out.str();
}

std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stod(item));
  }
  return out;
}

}  // namespace linkpad::util
