// Minimal leveled logger for experiment drivers.
//
// Not a general-purpose logging framework: figure drivers and examples want
// occasional progress lines on stderr while keeping stdout clean for the
// data rows they print. Thread-safe (one mutex around emission).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace linkpad::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide logger configuration and emission.
class Log {
 public:
  /// Set the minimum level that is emitted (default: kInfo).
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Emit one line at `level` to stderr, prefixed with the level tag.
  static void write(LogLevel level, const std::string& message);

 private:
  static std::mutex mutex_;
  static LogLevel level_;
};

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { Log::write(level_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Usage: LINKPAD_LOG_INFO << "trained " << n << " models";
#define LINKPAD_LOG_DEBUG ::linkpad::util::detail::LineBuilder(::linkpad::util::LogLevel::kDebug)
#define LINKPAD_LOG_INFO ::linkpad::util::detail::LineBuilder(::linkpad::util::LogLevel::kInfo)
#define LINKPAD_LOG_WARN ::linkpad::util::detail::LineBuilder(::linkpad::util::LogLevel::kWarn)
#define LINKPAD_LOG_ERROR ::linkpad::util::detail::LineBuilder(::linkpad::util::LogLevel::kError)

}  // namespace linkpad::util
