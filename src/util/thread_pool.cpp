#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace linkpad::util {

namespace {
/// The pool whose worker_loop is running on this thread (nullptr on
/// non-worker threads). Lets nested parallel dispatch detect "I am already
/// inside this pool" and run inline instead of deadlocking in wait_idle.
thread_local const ThreadPool* tls_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads != 0 ? threads : std::thread::hardware_concurrency();
  n = std::max<std::size_t>(n, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::on_worker_thread() const { return tls_current_pool == this; }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  tls_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), n, body, grain);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);

  const std::size_t workers = pool.thread_count();
  if (workers <= 1 || n <= grain || pool.on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared cursor: workers grab `grain`-sized chunks until exhausted.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  const std::size_t tasks = std::min(workers, (n + grain - 1) / grain);
  for (std::size_t t = 0; t < tasks; ++t) {
    pool.submit([cursor, first_error, error_mutex, n, grain, &body] {
      try {
        for (;;) {
          const std::size_t start = cursor->fetch_add(grain);
          if (start >= n) break;
          const std::size_t end = std::min(n, start + grain);
          for (std::size_t i = start; i < end; ++i) body(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (!*first_error) *first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();

  if (*first_error) std::rethrow_exception(*first_error);
}

}  // namespace linkpad::util
