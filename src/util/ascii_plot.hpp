// ASCII line plots so figure drivers can show the *shape* of each paper
// figure directly in the terminal next to the numeric rows.
#pragma once

#include <string>
#include <vector>

namespace linkpad::util {

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Plot configuration.
struct PlotOptions {
  int width = 72;        ///< plot area width in characters
  int height = 20;       ///< plot area height in characters
  bool log_x = false;    ///< logarithmic x axis
  bool log_y = false;    ///< logarithmic y axis
  std::string x_label;   ///< label printed under the x axis
  std::string y_label;   ///< label printed above the plot
  double y_min = 0;      ///< forced y range when y_fixed is true
  double y_max = 1;
  bool y_fixed = false;  ///< use [y_min, y_max] instead of autoscaling
};

/// Render series onto a character grid. Each series uses its own glyph
/// (`*`, `o`, `+`, `x`, …) and a legend line is appended.
std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options);

}  // namespace linkpad::util
