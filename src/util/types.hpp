// Common scalar types and unit helpers shared by every linkpad module.
//
// All simulation time is carried as `Seconds` (double, SI seconds). The
// paper's quantities span 10 ms timer intervals down to microsecond jitter;
// doubles give ~1e-12 relative resolution at that scale, far below any
// modelled noise floor.
#pragma once

#include <cstdint>

namespace linkpad {

/// Simulated or measured time, in SI seconds.
using Seconds = double;

/// Packet rate, in packets per second.
using PacketsPerSecond = double;

/// Monotonically increasing packet identifier.
using PacketId = std::uint64_t;

/// Class label index for the adversary's m-ary rate classification.
using ClassLabel = int;

namespace units {

constexpr Seconds operator""_s(long double v) { return static_cast<Seconds>(v); }
constexpr Seconds operator""_ms(long double v) { return static_cast<Seconds>(v) * 1e-3; }
constexpr Seconds operator""_us(long double v) { return static_cast<Seconds>(v) * 1e-6; }
constexpr Seconds operator""_ns(long double v) { return static_cast<Seconds>(v) * 1e-9; }

constexpr Seconds operator""_s(unsigned long long v) { return static_cast<Seconds>(v); }
constexpr Seconds operator""_ms(unsigned long long v) { return static_cast<Seconds>(v) * 1e-3; }
constexpr Seconds operator""_us(unsigned long long v) { return static_cast<Seconds>(v) * 1e-6; }
constexpr Seconds operator""_ns(unsigned long long v) { return static_cast<Seconds>(v) * 1e-9; }

/// Convert seconds to milliseconds (for display).
constexpr double to_ms(Seconds s) { return s * 1e3; }
/// Convert seconds to microseconds (for display).
constexpr double to_us(Seconds s) { return s * 1e6; }

}  // namespace units

}  // namespace linkpad
