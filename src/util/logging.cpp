#include "util/logging.hpp"

#include <iostream>

namespace linkpad::util {

std::mutex Log::mutex_;
LogLevel Log::level_ = LogLevel::kInfo;

void Log::set_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mutex_);
  level_ = level;
}

LogLevel Log::level() {
  std::lock_guard<std::mutex> lock(mutex_);
  return level_;
}

void Log::write(LogLevel level, const std::string& message) {
  static constexpr const char* kTags[] = {"[debug] ", "[info ] ", "[warn ] ",
                                          "[error] "};
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::cerr << kTags[idx] << message << '\n';
}

}  // namespace linkpad::util
