// Small command-line option parser for the figure drivers and examples.
//
// Supports `--name value`, `--name=value`, and boolean flags. Unknown
// arguments are an error (typos in sweep parameters must not be silently
// ignored in an experiment harness).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace linkpad::util {

/// Declarative command-line parser; declare options, then parse().
class ArgParser {
 public:
  /// `program` and `summary` appear in the --help text.
  ArgParser(std::string program, std::string summary);

  /// Declare a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);
  /// Declare a free-form string option with a default value.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declare a typed integer option: the value is validated while parse()
  /// consumes argv, so a typo fails loudly at the command line instead of
  /// throwing at first access deep inside a run. The typed default appears
  /// in the generated --help.
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  /// Declare a typed real-number option (same parse-time validation).
  void add_num(const std::string& name, double default_value,
               const std::string& help);

  /// Parse argv. Returns false (after printing a message) on error or when
  /// --help was requested; callers should then exit.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] double num(const std::string& name) const;
  [[nodiscard]] std::int64_t integer(const std::string& name) const;

  /// Render the --help text.
  [[nodiscard]] std::string help() const;

 private:
  enum class Kind { kFlag, kString, kInt, kNum };
  struct Spec {
    std::string help;
    std::string default_value;
    Kind kind = Kind::kString;
  };
  const Spec& spec_for(const std::string& name) const;
  void declare(const std::string& name, Spec spec);

  std::string program_;
  std::string summary_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

/// Parses a comma-separated list of doubles ("1,2.5,10").
std::vector<double> parse_double_list(const std::string& text);

}  // namespace linkpad::util
