// Precondition / invariant checking in the spirit of the C++ Core Guidelines
// Expects()/Ensures() contracts (I.6, I.8). Violations throw
// `linkpad::ContractViolation` so tests can assert on them; they are not
// compiled out in release builds because every check sits outside hot loops.
#pragma once

#include <stdexcept>
#include <string>

namespace linkpad {

/// Thrown when a LINKPAD_EXPECTS / LINKPAD_ENSURES contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: (" + expr + ") at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace linkpad

/// Precondition: argument/state requirements at function entry.
#define LINKPAD_EXPECTS(cond)                                                  \
  do {                                                                         \
    if (!(cond))                                                               \
      ::linkpad::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// Postcondition / invariant check.
#define LINKPAD_ENSURES(cond)                                                  \
  do {                                                                         \
    if (!(cond))                                                               \
      ::linkpad::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)
