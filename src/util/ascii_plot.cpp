#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace linkpad::util {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

double transform(double v, bool log_scale) {
  return log_scale ? std::log10(std::max(v, 1e-300)) : v;
}

}  // namespace

std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options) {
  LINKPAD_EXPECTS(options.width >= 16 && options.height >= 4);

  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -x_lo;
  double y_lo = x_lo;
  double y_hi = -x_lo;
  bool any = false;
  for (const auto& s : series) {
    LINKPAD_EXPECTS(s.x.size() == s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double tx = transform(s.x[i], options.log_x);
      const double ty = transform(s.y[i], options.log_y);
      if (!std::isfinite(tx) || !std::isfinite(ty)) continue;
      any = true;
      x_lo = std::min(x_lo, tx);
      x_hi = std::max(x_hi, tx);
      y_lo = std::min(y_lo, ty);
      y_hi = std::max(y_hi, ty);
    }
  }
  if (!any) return "(empty plot)\n";
  if (options.y_fixed) {
    y_lo = transform(options.y_min, options.log_y);
    y_hi = transform(options.y_max, options.log_y);
  }
  if (x_hi - x_lo < 1e-12) x_hi = x_lo + 1;
  if (y_hi - y_lo < 1e-12) y_hi = y_lo + 1;

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double tx = transform(s.x[i], options.log_x);
      const double ty = transform(s.y[i], options.log_y);
      if (!std::isfinite(tx) || !std::isfinite(ty)) continue;
      int cx = static_cast<int>(std::lround((tx - x_lo) / (x_hi - x_lo) * (w - 1)));
      int cy = static_cast<int>(std::lround((ty - y_lo) / (y_hi - y_lo) * (h - 1)));
      cx = std::clamp(cx, 0, w - 1);
      cy = std::clamp(cy, 0, h - 1);
      grid[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)] = glyph;
    }
  }

  std::ostringstream out;
  if (!options.y_label.empty()) out << options.y_label << '\n';
  auto axis_value = [&](double t, bool log_scale) {
    return log_scale ? std::pow(10.0, t) : t;
  };
  for (int row = 0; row < h; ++row) {
    const double ty = y_hi - (y_hi - y_lo) * row / (h - 1);
    std::ostringstream label;
    label << std::setw(10) << std::setprecision(3) << std::scientific
          << axis_value(ty, options.log_y);
    out << label.str() << " |" << grid[static_cast<std::size_t>(row)] << '\n';
  }
  out << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-') << '\n';
  {
    std::ostringstream lo, hi;
    lo << std::setprecision(3) << std::scientific << axis_value(x_lo, options.log_x);
    hi << std::setprecision(3) << std::scientific << axis_value(x_hi, options.log_x);
    std::string left = lo.str();
    std::string right = hi.str();
    const int pad = std::max(1, w - static_cast<int>(left.size() + right.size()));
    out << std::string(12, ' ') << left << std::string(static_cast<std::size_t>(pad), ' ')
        << right << '\n';
  }
  if (!options.x_label.empty()) {
    out << std::string(12, ' ') << options.x_label << '\n';
  }
  out << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = " << series[si].name;
  }
  out << '\n';
  return out.str();
}

}  // namespace linkpad::util
