// Deterministic, splittable random number generation.
//
// Experiments in this repository are Monte-Carlo sweeps that run sharded over
// threads; results must not depend on the thread count or the iteration
// order. We therefore use counter-based *substream derivation*: every task
// derives its own engine from (root_seed, stream_index) through SplitMix64
// hashing, instead of sharing one sequential engine.
//
// The engine is xoshiro256++ (Blackman & Vigna), implemented from the public
// domain reference: 256-bit state, period 2^256-1, passes BigCrush, and much
// faster than std::mt19937_64. We ship our own implementation so results are
// bit-reproducible across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace linkpad::util {

/// SplitMix64: tiny 64-bit PRNG used to seed / derive other generators.
/// Also usable as a strong 64-bit mixing (hash) function via `mix()`.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Stateless strong mix of a single 64-bit value.
  static constexpr std::uint64_t mix(std::uint64_t x) {
    return SplitMix64(x).next();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ engine. Satisfies std::uniform_random_bit_generator, so it
/// can also drive <random> distributions when convenient.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seed the 4x64-bit state by running SplitMix64 from `seed`
  /// (the procedure recommended by the xoshiro authors).
  explicit Xoshiro256pp(std::uint64_t seed = 0x9d8e3c2a17f4b6d1ULL) {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Advance the state by 2^128 steps: yields 2^128 non-overlapping
  /// subsequences (used by jump-based substreams; we normally prefer
  /// derive-by-hash, see RngFactory).
  void jump();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// Canonical engine alias used across the codebase (sim, live, stats all
/// draw from the same generator so experiments stay bit-reproducible).
using Rng = Xoshiro256pp;

/// Derives independent engines from a root seed by hashing (root, stream).
/// Two factories with the same root seed produce identical streams, no matter
/// how many threads consume them or in which order — the backbone of
/// reproducible parallel Monte Carlo.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t root_seed) : root_(root_seed) {}

  /// Engine for logical substream `stream` (e.g. trial index).
  [[nodiscard]] Xoshiro256pp make(std::uint64_t stream) const {
    // Mix root and stream through two rounds so that adjacent stream ids
    // land far apart in seed space.
    const std::uint64_t s =
        SplitMix64::mix(root_ ^ SplitMix64::mix(stream + 0x632be59bd9b4e019ULL));
    return Xoshiro256pp(s);
  }

  /// Two-level substream (e.g. (sweep point, trial)).
  [[nodiscard]] Xoshiro256pp make(std::uint64_t a, std::uint64_t b) const {
    return make(SplitMix64::mix(a) ^ (b * 0x9e3779b97f4a7c15ULL));
  }

  [[nodiscard]] std::uint64_t root_seed() const { return root_; }

 private:
  std::uint64_t root_;
};

}  // namespace linkpad::util
