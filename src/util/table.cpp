#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace linkpad::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  LINKPAD_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  LINKPAD_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_numeric_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::write_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string fmt_sci(double value, int precision) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace linkpad::util
