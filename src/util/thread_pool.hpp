// Fixed-size thread pool and deterministic parallel dispatch built on it.
//
// The experiment runner shards Monte-Carlo trials across threads. Work items
// are indexed [0, n); each item derives its own RNG substream from its index
// (see util/rng.hpp), so the *schedule* is free to be dynamic while results
// stay independent of thread count. Chunks are handed out via an atomic
// cursor (self-balancing for uneven item costs, e.g. different sample sizes).
//
// Two dispatch shapes are offered (the execution-policy seam, in the style
// of ROOT FitUtil's ExecutionPolicy + redFunction pattern):
//  * parallel_for        — body(i) per index; the simple per-item form.
//  * parallel_for_chunks — body(slot, begin, end) per grain-sized run of
//    indices. `slot` identifies the executing task (stable for that task's
//    whole drain loop), so callers keep per-slot scratch — engines, spec
//    copies, partial reductions — alive across every chunk the task claims
//    instead of rebuilding state per item. Pair with tree_reduce to fold
//    the per-chunk partials deterministically.
//
// Both are nested-dispatch safe: a call issued from inside a task of the
// SAME pool runs inline on that worker (waiting on the pool from one of its
// own tasks would deadlock — the waiting task itself counts as in flight).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace linkpad::util {

/// How a sharded workload is dispatched. Results must never depend on the
/// choice — it selects a schedule, not a computation.
enum class ExecutionPolicy {
  /// Inline on the calling thread; no pool, no atomics. The reference
  /// schedule every parallel policy is bit-compared against.
  kSerial,
  /// One logical task per index over a pool (parallel_for). The right shape
  /// for few, expensive, uneven items (sweep points).
  kMultithread,
  /// Chunked dispatch with per-slot scratch reuse and a caller-side
  /// reduction of per-chunk partials (parallel_for_chunks + tree_reduce).
  /// The right shape for many cheap items (population flows).
  kChunked,
};

/// A simple fixed-size worker pool executing std::function tasks.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing. Must not be
  /// called from a task of THIS pool (the caller is still in flight).
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers — the test
  /// parallel dispatch uses to run nested calls inline instead of
  /// deadlocking in wait_idle.
  [[nodiscard]] bool on_worker_thread() const;

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across the global pool (or inline when n is
/// small / only one hardware thread / the caller is already a pool worker).
/// Exceptions from the body propagate to the caller (first one wins).
/// `grain` is the chunk size handed to a worker at a time; pick larger
/// grains for cheap bodies.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Same, over an explicit pool (e.g. a sweep's dedicated pool). Results are
/// independent of the pool size — each index derives its own state.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// parallel_for over [0, n) collecting results into a vector (slot i is
/// written only by the task computing item i — no synchronization needed).
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn, std::size_t grain = 1) {
  std::vector<T> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

/// Upper bound on the `slot` values parallel_for_chunks passes for a given
/// dispatch — size per-slot scratch arrays with this.
[[nodiscard]] inline std::size_t chunk_slots(const ThreadPool& pool,
                                             std::size_t n,
                                             std::size_t grain) {
  if (n == 0) return 1;
  grain = grain == 0 ? 1 : grain;
  const std::size_t tasks = (n + grain - 1) / grain;
  const std::size_t workers =
      (pool.thread_count() <= 1 || pool.on_worker_thread())
          ? 1
          : pool.thread_count();
  return std::max<std::size_t>(1, std::min(workers, tasks));
}

/// Chunked dispatch: body(slot, begin, end) over grain-aligned runs of
/// [0, n). Every chunk starts at a multiple of `grain`, so the chunk
/// partition depends only on (n, grain) — never on the pool size — and a
/// caller reducing per-chunk partials in chunk order gets bit-identical
/// results at any thread count. `slot` < chunk_slots(pool, n, grain) names
/// the draining task; per-slot scratch survives across its chunks. Runs
/// inline (single slot 0, chunks in order) when the pool is trivial or the
/// caller is already one of its workers. Exceptions propagate (first wins);
/// remaining chunks may be skipped once a body throws.
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::size_t n, std::size_t grain,
                         Body&& body) {
  if (n == 0) return;
  grain = grain == 0 ? 1 : grain;

  const std::size_t workers = pool.thread_count();
  if (workers <= 1 || n <= grain || pool.on_worker_thread()) {
    for (std::size_t start = 0; start < n; start += grain) {
      body(std::size_t{0}, start, std::min(n, start + grain));
    }
    return;
  }

  const std::size_t tasks = std::min(workers, (n + grain - 1) / grain);
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (std::size_t slot = 0; slot < tasks; ++slot) {
    // By-reference captures are safe: wait_idle below outlives every task.
    pool.submit([&, slot] {
      try {
        for (;;) {
          if (failed.load(std::memory_order_relaxed)) break;
          const std::size_t start = cursor.fetch_add(grain);
          if (start >= n) break;
          body(slot, start, std::min(n, start + grain));
        }
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();

  if (first_error) std::rethrow_exception(first_error);
}

/// Deterministic fixed-shape binary tree reduction: adjacent pairs fold
/// level by level (merge(left, right) folds right INTO left) until one item
/// remains. The tree shape is a pure function of items.size(), so a
/// non-commutative merge — concatenation, order-sensitive sketches — still
/// reduces identically on every run and at every thread count. Expects at
/// least one item.
template <typename T, typename Merge>
T tree_reduce(std::vector<T> items, Merge&& merge) {
  LINKPAD_EXPECTS(!items.empty());
  while (items.size() > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < items.size(); i += 2) {
      merge(items[i], items[i + 1]);
      if (out != i) items[out] = std::move(items[i]);
      ++out;
    }
    if (items.size() % 2 == 1) {
      items[out++] = std::move(items.back());
    }
    items.resize(out);
  }
  return std::move(items.front());
}

}  // namespace linkpad::util
