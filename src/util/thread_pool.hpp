// Fixed-size thread pool and a deterministic parallel_for built on it.
//
// The experiment runner shards Monte-Carlo trials across threads. Work items
// are indexed [0, n); each item derives its own RNG substream from its index
// (see util/rng.hpp), so the *schedule* is free to be dynamic while results
// stay independent of thread count. Chunks are handed out via an atomic
// cursor (self-balancing for uneven item costs, e.g. different sample sizes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace linkpad::util {

/// A simple fixed-size worker pool executing std::function tasks.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across the global pool (or inline when n is
/// small / only one hardware thread). Exceptions from the body propagate to
/// the caller (first one wins). `grain` is the chunk size handed to a worker
/// at a time; pick larger grains for cheap bodies.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Same, over an explicit pool (e.g. a sweep's dedicated pool). Results are
/// independent of the pool size — each index derives its own state.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// parallel_for over [0, n) collecting results into a vector (slot i is
/// written only by the task computing item i — no synchronization needed).
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn, std::size_t grain = 1) {
  std::vector<T> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

}  // namespace linkpad::util
