// Text table / CSV emission for figure drivers.
//
// Every bench binary prints the figure's series both as an aligned console
// table (human inspection) and, with --csv, as machine-readable CSV rows so
// results can be diffed against EXPERIMENTS.md.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace linkpad::util {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` fixed decimals.
  void add_numeric_row(const std::vector<double>& row, int precision = 4);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }

  /// Render with padded columns and a separator rule under the header.
  [[nodiscard]] std::string to_string() const;

  /// Emit as CSV (header + rows).
  void write_csv(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for row construction).
std::string fmt(double value, int precision = 4);

/// Format in scientific notation (for quantities like n(99%) ~ 1e11).
std::string fmt_sci(double value, int precision = 2);

}  // namespace linkpad::util
