#include "sim/diurnal.hpp"

#include <cmath>

#include "util/check.hpp"

namespace linkpad::sim {

namespace {
// Circular distance between two hours on the 24h clock.
double hour_distance(double a, double b) {
  double d = std::abs(a - b);
  if (d > 12.0) d = 24.0 - d;
  return d;
}
}  // namespace

DiurnalProfile::DiurnalProfile(double quiet, double peak, double peak_hour,
                               double width_hours)
    : quiet_(quiet), peak_(peak), peak_hour_(peak_hour),
      width_hours_(width_hours) {
  LINKPAD_EXPECTS(quiet >= 0.0 && quiet < 1.0);
  LINKPAD_EXPECTS(peak >= quiet && peak < 1.0);
  LINKPAD_EXPECTS(peak_hour >= 0.0 && peak_hour < 24.0);
  LINKPAD_EXPECTS(width_hours > 0.0);

  double acc = 0.0;
  for (int i = 0; i < 24 * 4; ++i) {
    acc += utilization_at(i / 4.0);
  }
  mean_ = acc / (24.0 * 4.0);
}

double DiurnalProfile::utilization_at(double hour) const {
  const double h = hour - 24.0 * std::floor(hour / 24.0);
  const double d = hour_distance(h, peak_hour_);
  const double bump = std::exp(-0.5 * (d / width_hours_) * (d / width_hours_));
  return quiet_ + (peak_ - quiet_) * bump;
}

double DiurnalProfile::scale_at(double hour) const {
  return utilization_at(hour) / mean_;
}

}  // namespace linkpad::sim
