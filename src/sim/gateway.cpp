#include "sim/gateway.hpp"

#include "util/check.hpp"

namespace linkpad::sim {

PaddingGateway::PaddingGateway(Simulation& sim,
                               std::unique_ptr<TimerPolicy> policy,
                               const JitterParams& jitter, util::Rng& rng,
                               PacketSink& downstream, int wire_bytes,
                               std::size_t queue_capacity)
    : sim_(sim),
      policy_(std::move(policy)),
      jitter_(jitter),
      rng_(rng),
      downstream_(downstream),
      wire_bytes_(wire_bytes),
      queue_capacity_(queue_capacity) {
  LINKPAD_EXPECTS(policy_ != nullptr);
  LINKPAD_EXPECTS(wire_bytes > 0);
  LINKPAD_EXPECTS(queue_capacity > 0);
}

void PaddingGateway::on_packet(const Packet& packet, Seconds /*now*/) {
  ++stats_.payload_in;
  ++arrivals_since_fire_;  // each arrival raises one NIC interrupt
  if (queue_.size() >= queue_capacity_) {
    ++stats_.dropped;
    return;
  }
  queue_.push_back(packet);
}

void PaddingGateway::start() {
  next_designed_fire_ = sim_.now() + policy_->next_interval(rng_);
  sim_.schedule_timer_at(next_designed_fire_, *this);
}

PacketsPerSecond PaddingGateway::wire_rate() const {
  return 1.0 / policy_->mean_interval();
}

void PaddingGateway::on_timer(Seconds /*now*/) {
  ++stats_.timer_fires;

  // The interrupt routine runs after a random scheduling delay; payload
  // arrivals since the previous fire each contributed a blocking term.
  const Seconds delay = jitter_.emission_delay(rng_, arrivals_since_fire_);

  GatewayFeedback feedback;
  feedback.now = sim_.now();
  feedback.arrivals_since_fire = arrivals_since_fire_;
  arrivals_since_fire_ = 0;

  Packet wire;
  wire.flow = FlowId::kMonitored;
  wire.size_bytes = wire_bytes_;  // constant wire size hides payload length
  bool emit = true;
  if (!queue_.empty()) {
    const Packet payload = queue_.front();
    queue_.pop_front();
    wire.kind = PacketKind::kPayload;
    wire.created = payload.created;
    const Seconds waited = sim_.now() - payload.created;
    stats_.queueing_delay.add(waited);
    stats_.delay_p50.add(waited);
    stats_.delay_p95.add(waited);
    stats_.delay_p99.add(waited);
    ++stats_.payload_out;
    stats_.payload_bytes += static_cast<std::uint64_t>(wire_bytes_);
    feedback.emitted_payload = true;
  } else if (policy_->spend_dummy(feedback)) {
    wire.kind = PacketKind::kDummy;
    wire.created = sim_.now();
    ++stats_.dummy_out;
    stats_.padding_bytes += static_cast<std::uint64_t>(wire_bytes_);
    feedback.emitted_dummy = true;
  } else {
    // The queue-feedback seam in action: the policy declined to pad, so
    // this interrupt puts nothing on the wire.
    ++stats_.suppressed_fires;
    emit = false;
  }
  feedback.queue_depth = queue_.size();

  const Seconds emit_time = sim_.now() + delay;
  if (emit) {
    wire.id = next_wire_id_++;
    sim_.schedule_at(emit_time, [this, wire, emit_time]() mutable {
      wire.emitted = emit_time;
      downstream_.on_packet(wire, emit_time);
    });
  }

  // Absolute (drift-free) scheduling of the next designed interrupt; the
  // policy sees the post-emission link state before the draw.
  policy_->observe(feedback);
  next_designed_fire_ += policy_->next_interval(rng_);
  // A grossly delayed interrupt cannot overtake the next one on real
  // hardware; the kernel coalesces. Model: push the schedule if needed.
  if (next_designed_fire_ <= emit_time) next_designed_fire_ = emit_time + 1e-9;
  sim_.schedule_timer_at(next_designed_fire_, *this);
}

}  // namespace linkpad::sim
