#include "sim/hop.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace linkpad::sim {

namespace {
Seconds service_time(int bytes, double bandwidth_bps) {
  return static_cast<Seconds>(bytes) * 8.0 / bandwidth_bps;
}
}  // namespace

HopChannel::HopChannel(const HopConfig& config, int monitored_packet_bytes)
    : config_(config),
      monitored_service_(service_time(monitored_packet_bytes, config.bandwidth_bps)),
      sampler_(config.cross_utilization,
               service_time(config.cross_packet_bytes, config.bandwidth_bps),
               config.service_model) {
  LINKPAD_EXPECTS(config.bandwidth_bps > 0.0);
  LINKPAD_EXPECTS(config.cross_utilization >= 0.0 && config.cross_utilization < 1.0);
  LINKPAD_EXPECTS(monitored_packet_bytes > 0);
}

Seconds HopChannel::traverse(Seconds arrival, util::Rng& rng) {
  const Seconds wait = sampler_.sample(rng);
  Seconds start_service = arrival + wait;
  // FIFO within the monitored flow: we cannot begin service before the
  // previous monitored packet's service completed.
  if (last_departure_ >= 0.0) {
    start_service = std::max(start_service, last_departure_);
  }
  const Seconds departure = start_service + monitored_service_;
  last_departure_ = departure;
  return departure + config_.propagation_delay;
}

void HopChannel::set_cross_utilization(double rho) {
  config_.cross_utilization = rho;
  sampler_.set_rho(rho);
}

PathModel::PathModel(const std::vector<HopConfig>& hops,
                     int monitored_packet_bytes) {
  hops_.reserve(hops.size());
  base_utilization_.reserve(hops.size());
  for (const auto& cfg : hops) {
    hops_.emplace_back(cfg, monitored_packet_bytes);
    base_utilization_.push_back(cfg.cross_utilization);
  }
}

Seconds PathModel::traverse(Seconds t_emit, util::Rng& rng) {
  Seconds t = t_emit;
  for (auto& hop : hops_) {
    t = hop.traverse(t, rng);
  }
  return t;
}

void PathModel::scale_utilization(double scale) {
  LINKPAD_EXPECTS(scale >= 0.0);
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    const double rho = std::min(base_utilization_[i] * scale, 0.95);
    hops_[i].set_cross_utilization(rho);
  }
}

double PathModel::total_wait_variance() const {
  double v = 0.0;
  for (const auto& hop : hops_) v += hop.wait_variance();
  return v;
}

}  // namespace linkpad::sim
