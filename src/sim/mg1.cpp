#include "sim/mg1.hpp"

#include <cmath>

#include "util/check.hpp"

namespace linkpad::sim {

double TrimodalMix::mean_bytes() {
  double m = 0.0;
  for (int i = 0; i < 3; ++i) m += kSizes[i] * kProbs[i];
  return m;
}

Mg1WaitSampler::Mg1WaitSampler(double rho, Seconds mean_service,
                               ServiceModel model)
    : rho_(rho), mean_service_(mean_service), model_(model) {
  LINKPAD_EXPECTS(rho >= 0.0 && rho < 1.0);
  LINKPAD_EXPECTS(mean_service > 0.0);

  const double s = mean_service_;
  switch (model_) {
    case ServiceModel::kDeterministic:
      es1_ = s;
      es2_ = s * s;
      es3_ = s * s * s;
      break;
    case ServiceModel::kExponential:
      es1_ = s;
      es2_ = 2.0 * s * s;
      es3_ = 6.0 * s * s * s;
      break;
    case ServiceModel::kTrimodal: {
      // Service time of size-b packet is (b / mean_bytes) * mean_service, so
      // the mix's E[S] equals `mean_service` by construction.
      const double mb = TrimodalMix::mean_bytes();
      es1_ = es2_ = es3_ = 0.0;
      for (int i = 0; i < 3; ++i) {
        const double si = TrimodalMix::kSizes[i] / mb * s;
        es1_ += TrimodalMix::kProbs[i] * si;
        es2_ += TrimodalMix::kProbs[i] * si * si;
        es3_ += TrimodalMix::kProbs[i] * si * si * si;
        tri_service_[i] = si;
        tri_weight_[i] = TrimodalMix::kProbs[i] * si;
        tri_total_ += tri_weight_[i];
      }
      break;
    }
  }
}

void Mg1WaitSampler::set_rho(double rho) {
  LINKPAD_EXPECTS(rho >= 0.0 && rho < 1.0);
  rho_ = rho;
}

double Mg1WaitSampler::mean_wait() const {
  if (rho_ <= 0.0) return 0.0;
  const double lambda = rho_ / es1_;
  return lambda * es2_ / (2.0 * (1.0 - rho_));
}

double Mg1WaitSampler::wait_variance() const {
  if (rho_ <= 0.0) return 0.0;
  const double lambda = rho_ / es1_;
  const double m1 = lambda * es2_ / (2.0 * (1.0 - rho_));
  return lambda * es3_ / (3.0 * (1.0 - rho_)) + m1 * m1;
}

}  // namespace linkpad::sim
