#include "sim/scheduler.hpp"

#include "util/check.hpp"

namespace linkpad::sim {

void Simulation::schedule_at(Seconds t, Callback cb) {
  LINKPAD_EXPECTS(t >= now_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  pool_[slot] = std::move(cb);
  cb_heap_.push_back(CbItem{t, next_seq_++, slot});
  std::push_heap(cb_heap_.begin(), cb_heap_.end(), Later{});
}

void Simulation::schedule_in(Seconds dt, Callback cb) {
  LINKPAD_EXPECTS(dt >= 0.0);
  schedule_at(now_ + dt, std::move(cb));
}

void Simulation::schedule_timer_at(Seconds t, TimerTask& task) {
  LINKPAD_EXPECTS(t >= now_);
  timer_heap_.push_back(TimerItem{t, next_seq_++, &task});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), Later{});
}

void Simulation::schedule_timer_in(Seconds dt, TimerTask& task) {
  LINKPAD_EXPECTS(dt >= 0.0);
  schedule_timer_at(now_ + dt, task);
}

bool Simulation::step(Seconds t_limit) {
  const bool have_cb = !cb_heap_.empty();
  const bool have_timer = !timer_heap_.empty();
  if (!have_cb && !have_timer) return false;

  // The two heaps share one sequence counter, so comparing their tops by
  // (t, seq) restores the exact total order of a single queue.
  bool take_timer = have_timer;
  if (have_cb && have_timer) {
    const CbItem& c = cb_heap_.front();
    const TimerItem& ti = timer_heap_.front();
    take_timer = ti.t < c.t || (ti.t == c.t && ti.seq < c.seq);
  }

  if (take_timer) {
    const TimerItem item = timer_heap_.front();
    if (item.t > t_limit) return false;
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), Later{});
    timer_heap_.pop_back();
    now_ = item.t;
    ++processed_;
    item.task->on_timer(now_);
  } else {
    const CbItem item = cb_heap_.front();
    if (item.t > t_limit) return false;
    std::pop_heap(cb_heap_.begin(), cb_heap_.end(), Later{});
    cb_heap_.pop_back();
    now_ = item.t;
    // Move the closure out and recycle its slot BEFORE invoking: the
    // callback may schedule new events, which may grow or reuse the pool.
    InlineCallback cb = std::move(pool_[item.slot]);
    free_slots_.push_back(item.slot);
    ++processed_;
    cb();
  }
  return true;
}

void Simulation::run_until(Seconds t_end) {
  stopped_ = false;
  while (!stopped_ && step(t_end)) {
  }
  if (empty() || stopped_) return;
  now_ = t_end;
}

void Simulation::run() {
  stopped_ = false;
  constexpr Seconds kForever = std::numeric_limits<Seconds>::infinity();
  while (!stopped_ && step(kForever)) {
  }
}

}  // namespace linkpad::sim
