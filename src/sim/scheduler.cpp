#include "sim/scheduler.hpp"

#include "util/check.hpp"

namespace linkpad::sim {

void Simulation::schedule_at(Seconds t, Callback cb) {
  LINKPAD_EXPECTS(t >= now_);
  queue_.push(Entry{t, next_seq_++, std::move(cb)});
}

void Simulation::schedule_in(Seconds dt, Callback cb) {
  LINKPAD_EXPECTS(dt >= 0.0);
  schedule_at(now_ + dt, std::move(cb));
}

void Simulation::run_until(Seconds t_end) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().t <= t_end) {
    // Copy out before pop so the callback may schedule new events freely.
    Entry entry{queue_.top().t, queue_.top().seq, std::move(const_cast<Entry&>(queue_.top()).cb)};
    queue_.pop();
    now_ = entry.t;
    entry.cb();
    ++processed_;
  }
  if (queue_.empty() || stopped_) return;
  now_ = t_end;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    Entry entry{queue_.top().t, queue_.top().seq, std::move(const_cast<Entry&>(queue_.top()).cb)};
    queue_.pop();
    now_ = entry.t;
    entry.cb();
    ++processed_;
  }
}

}  // namespace linkpad::sim
