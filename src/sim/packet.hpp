// Packet record shared by the DES entities.
//
// Per the paper's threat model all packets on the wire have CONSTANT size and
// encrypted payload; the adversary cannot tell payload from dummy (Sec 3.2,
// remark 1/3). The `kind` field exists only for instrumentation on our side
// of the experiment (accounting, invariant checks) — no classifier input may
// depend on it.
#pragma once

#include "util/types.hpp"

namespace linkpad::sim {

/// What a packet carries. Invisible to the adversary.
enum class PacketKind : unsigned char {
  kPayload,  ///< real user packet released by the padding timer
  kDummy,    ///< cover packet injected when the queue was empty
  kCross,    ///< third-party cross traffic at a router
};

/// Which stream a packet belongs to. The adversary can see this (tunnel
/// endpoints are plaintext in the outer IP header), which is exactly why he
/// can isolate the padded GW1→GW2 stream for timing analysis.
enum class FlowId : unsigned char {
  kMonitored,  ///< the padded gateway-to-gateway stream
  kCrossHop,   ///< cross traffic local to some router hop
};

struct Packet {
  PacketId id = 0;
  PacketKind kind = PacketKind::kDummy;
  FlowId flow = FlowId::kMonitored;
  int size_bytes = 0;
  Seconds created = 0;    ///< when the payload entered GW1 (payload only)
  Seconds emitted = 0;    ///< when GW1 put it on the wire
};

/// Anything that accepts packets at a simulated time.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_packet(const Packet& packet, Seconds now) = 0;
};

}  // namespace linkpad::sim
