#include "sim/packet_path.hpp"

#include "util/check.hpp"

namespace linkpad::sim {

PacketLevelTestbed::PacketLevelTestbed(const TestbedConfig& config,
                                       util::Rng& rng)
    : config_(config), rng_(rng) {
  LINKPAD_EXPECTS(config.policy != nullptr);

  // Wire back to front: sniffer <- router_k <- ... <- router_0 <- gateway.
  PacketSink* next = &sniffer_;
  for (auto it = config.hops_before_tap.rbegin();
       it != config.hops_before_tap.rend(); ++it) {
    auto router =
        std::make_unique<Router>(sim_, it->name, it->bandwidth_bps, *next);
    const double cross_service =
        static_cast<double>(it->cross_packet_bytes) * 8.0 / it->bandwidth_bps;
    const double cross_rate =
        it->cross_utilization > 0.0 ? it->cross_utilization / cross_service
                                    : 0.0;
    cross_.push_back(std::make_unique<CrossTrafficProcess>(
        sim_, *router, cross_rate, it->cross_packet_bytes, rng_));
    next = router.get();
    routers_.push_back(std::move(router));
  }
  // routers_ currently holds far-to-near; reverse for hop(i) == i-th hop
  // after the gateway.
  std::reverse(routers_.begin(), routers_.end());

  gateway_ = std::make_unique<PaddingGateway>(sim_, config.policy->clone(),
                                              config.jitter, rng_, *next,
                                              config.wire_bytes);
  switch (config.payload_kind) {
    case PayloadKind::kCbr:
      source_ = std::make_unique<CbrSource>(config.payload_rate,
                                            config.payload_bytes);
      break;
    case PayloadKind::kPoisson:
      source_ = std::make_unique<PoissonSource>(config.payload_rate,
                                                config.payload_bytes);
      break;
    case PayloadKind::kOnOff:
      source_ = std::make_unique<OnOffSource>(2.0 * config.payload_rate, 0.5,
                                              0.5, config.payload_bytes);
      break;
  }
}

std::vector<Seconds> PacketLevelTestbed::collect_piats(std::size_t count) {
  LINKPAD_EXPECTS(count > 0);
  if (!started_) {
    source_->start(sim_, *gateway_, rng_);
    for (auto& cross : cross_) cross->start();
    gateway_->start();
    started_ = true;
    consumed_arrivals_ = config_.warmup_piats + 1;
  }

  const std::size_t target = consumed_arrivals_ + count;
  const Seconds slab = static_cast<Seconds>(count + config_.warmup_piats + 2) *
                       config_.policy->mean_interval();
  while (sniffer_.captured() < target) {
    sim_.run_until(sim_.now() + slab);
    LINKPAD_ENSURES(!sim_.empty());
  }

  const auto& arrivals = sniffer_.arrival_times();
  std::vector<Seconds> piats;
  piats.reserve(count);
  for (std::size_t i = consumed_arrivals_; i < target; ++i) {
    piats.push_back(arrivals[i] - arrivals[i - 1]);
  }
  consumed_arrivals_ = target;
  return piats;
}

}  // namespace linkpad::sim
