// Analytic router-hop channel: delay experienced by a monitored packet
// crossing one router whose output link carries Poisson cross traffic.
//
// delay = V (stationary M/G/1 wait, see mg1.hpp) + own service time + prop,
// with per-hop FIFO enforced by a departure-time max-chain so packets of the
// monitored flow can never reorder inside a queue. This is the δ_net source
// of eq. (10): its variance grows with the hop's cross-traffic utilization,
// which is precisely what Fig 6 and Fig 8 measure.
#pragma once

#include <string>
#include <vector>

#include "sim/mg1.hpp"
#include "stats/distributions.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace linkpad::sim {

/// Static description of one hop.
struct HopConfig {
  std::string name = "hop";
  double bandwidth_bps = 1e9;      ///< output link speed
  double cross_utilization = 0.0;  ///< fraction of the link used by cross traffic
  int cross_packet_bytes = 1000;   ///< cross packet size (service model below)
  ServiceModel service_model = ServiceModel::kDeterministic;
  Seconds propagation_delay = 50e-6;  ///< constant per-hop latency
};

/// Stateful per-run hop channel.
class HopChannel {
 public:
  HopChannel(const HopConfig& config, int monitored_packet_bytes);

  /// Delay a monitored packet arriving at `arrival`; returns its departure
  /// time from this hop (≥ arrival + service + propagation).
  [[nodiscard]] Seconds traverse(Seconds arrival, util::Rng& rng);

  /// Re-tune the cross utilization (diurnal sweeps).
  void set_cross_utilization(double rho);

  [[nodiscard]] const HopConfig& config() const { return config_; }

  /// Theoretical Var of the queueing component (for calibration tests).
  [[nodiscard]] double wait_variance() const { return sampler_.wait_variance(); }

  /// Own (monitored packet) serialization time on this link.
  [[nodiscard]] Seconds monitored_service() const { return monitored_service_; }

 private:
  HopConfig config_;
  Seconds monitored_service_;
  Mg1WaitSampler sampler_;
  Seconds last_departure_ = -1.0;
};

/// A chain of hops between GW1's output and the adversary's tap.
class PathModel {
 public:
  PathModel(const std::vector<HopConfig>& hops, int monitored_packet_bytes);

  /// Propagate one monitored packet emitted at `t_emit` through every hop;
  /// returns arrival time at the tap.
  [[nodiscard]] Seconds traverse(Seconds t_emit, util::Rng& rng);

  /// Apply a common utilization scale factor (diurnal modulation):
  /// each hop's utilization becomes base_utilization * scale, clamped < 1.
  void scale_utilization(double scale);

  [[nodiscard]] std::size_t hop_count() const { return hops_.size(); }
  [[nodiscard]] const HopChannel& hop(std::size_t i) const { return hops_[i]; }

  /// Sum of per-hop stationary wait variances — the model-level σ_net².
  [[nodiscard]] double total_wait_variance() const;

 private:
  std::vector<HopChannel> hops_;
  std::vector<double> base_utilization_;
};

}  // namespace linkpad::sim
