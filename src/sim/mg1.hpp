// Exact stationary M/G/1 waiting-time sampling (Pollaczek–Khinchine).
//
// Cross traffic at a router hop is a Poisson packet stream sharing the
// output link with the monitored padded stream. The padded stream samples
// that queue only once per ~10 ms, while the queue's relaxation time is
// ~E[S]/(1−ρ) ≈ tens of µs, so consecutive monitored packets see effectively
// independent draws of the *stationary virtual waiting time* V (and by PASTA
// a Poisson-agnostic arrival sees the time-stationary law). The PK
// representation makes exact sampling trivial:
//
//     V  =  Σ_{i=1}^{K} R_i,   K ~ Geometric(ρ)  (P[K = k] = (1−ρ)ρ^k),
//     R_i i.i.d. equilibrium (residual) service times, f_R = (1−F_S)/E[S].
//
// For deterministic service S, R ~ Uniform(0, S]; for exponential, R ~ Exp.
// This gives packet-accurate queueing noise at O(E[K]) = O(ρ/(1−ρ)) cost per
// monitored packet, independent of the cross-traffic packet rate — the trick
// that makes the 24-hour WAN figures tractable. Validated against the
// packet-level Router in tests/sim/router_test.cpp.
#pragma once

#include <cmath>
#include <vector>

#include "stats/distributions.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace linkpad::sim {

/// Service-time model of the cross traffic at one hop.
enum class ServiceModel {
  kDeterministic,  ///< all cross packets the same size (M/D/1)
  kExponential,    ///< exponential service (M/M/1)
  kTrimodal,       ///< empirical internet mix: 40 / 576 / 1500 byte packets
};

/// Samples stationary waiting times of an M/G/1 queue at utilization rho.
class Mg1WaitSampler {
 public:
  /// `mean_service` is E[S] in seconds; rho in [0, 1).
  Mg1WaitSampler(double rho, Seconds mean_service, ServiceModel model);

  /// One stationary waiting-time draw (0 with probability 1−ρ). Inline:
  /// the geometric loop draws E[K] = ρ/(1−ρ) residuals per call — ~19 at
  /// the population-clamped ρ = 0.95 — which makes this the single hottest
  /// arithmetic in a population run; keeping it in the header lets the
  /// whole draw chain (uniform01 included) flatten into the caller.
  [[nodiscard]] Seconds sample(util::Rng& rng) const {
    if (rho_ <= 0.0) return 0.0;
    // K ~ Geometric(rho): count failures until a U >= rho.
    Seconds v = 0.0;
    while (rng.uniform01() < rho_) {
      v += sample_residual(rng);
    }
    return v;
  }

  /// Exact stationary mean waiting time E[V] = λE[S²]/(2(1−ρ)).
  [[nodiscard]] double mean_wait() const;

  /// Exact stationary waiting-time variance (from PK transform moments):
  /// Var(V) = λE[S³]/(3(1−ρ)) + (λE[S²])²/(4(1−ρ)²).
  [[nodiscard]] double wait_variance() const;

  [[nodiscard]] double rho() const { return rho_; }
  [[nodiscard]] Seconds mean_service() const { return mean_service_; }

  /// Update the utilization (diurnal profiles re-tune hops over the day).
  void set_rho(double rho);

 private:
  /// One equilibrium residual service time draw. The trimodal branch uses
  /// the component weights precomputed at construction (the exact same
  /// values the old per-call recomputation produced), so a draw costs one
  /// or two uniforms and a couple of multiplies under every model.
  [[nodiscard]] Seconds sample_residual(util::Rng& rng) const {
    switch (model_) {
      case ServiceModel::kDeterministic:
        // Residual of a constant S is Uniform(0, S].
        return mean_service_ * (1.0 - rng.uniform01());
      case ServiceModel::kExponential:
        // Memoryless: residual is Exp(mean_service) again.
        return -mean_service_ * std::log1p(-rng.uniform01());
      case ServiceModel::kTrimodal: {
        // Residual density (1−F)/E[S]: pick a component size-biased by its
        // service time, then a uniform residual within it.
        double u = rng.uniform01() * tri_total_;
        int pick = 0;
        for (; pick < 2; ++pick) {
          if (u < tri_weight_[pick]) break;
          u -= tri_weight_[pick];
        }
        return tri_service_[pick] * (1.0 - rng.uniform01());
      }
    }
    return 0.0;  // unreachable
  }

  double rho_;
  Seconds mean_service_;
  ServiceModel model_;
  // Raw service moments E[S], E[S²], E[S³] for the chosen model.
  double es1_ = 0, es2_ = 0, es3_ = 0;
  // Trimodal residual sampling state (per-component service time and
  // size-biased weight, plus the weight total), fixed at construction.
  double tri_service_[3] = {0, 0, 0};
  double tri_weight_[3] = {0, 0, 0};
  double tri_total_ = 0;
};

/// The trimodal internet packet mix used by ServiceModel::kTrimodal:
/// sizes in bytes with empirical probabilities (40: 50%, 576: 30%, 1500: 20%).
struct TrimodalMix {
  static constexpr double kSizes[3] = {40.0, 576.0, 1500.0};
  static constexpr double kProbs[3] = {0.5, 0.3, 0.2};
  /// Mean packet size of the mix, bytes.
  static double mean_bytes();
};

}  // namespace linkpad::sim
