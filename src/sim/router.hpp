// Packet-level output-queued router, plus a Poisson cross-traffic process.
//
// This is the "ground truth" router used to VALIDATE the analytic hop
// channel (hop.hpp): every packet — monitored and cross — is an event, the
// output link serves them FIFO at the configured bandwidth. It reproduces
// the Marconi ESR-5000 of the paper's lab setup (Fig 3): cross traffic from
// subnet C shares GW1's outgoing link and perturbs the padded stream.
// Use for tests and small runs; for day-long sweeps use PathModel.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/packet.hpp"
#include "sim/scheduler.hpp"
#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {

/// FIFO output-queued router with a single bottleneck link.
class Router final : public PacketSink {
 public:
  /// Packets of `FlowId::kMonitored` are forwarded to `next` after service;
  /// cross-flow packets are served (consuming link time) then dropped (they
  /// exit toward their own destination).
  Router(Simulation& sim, std::string name, double bandwidth_bps,
         PacketSink& next, std::size_t queue_capacity = 1 << 16);

  void on_packet(const Packet& packet, Seconds now) override;

  /// Mean wait of monitored packets in this router's queue (excluding own
  /// service), for validation against Mg1WaitSampler::mean_wait().
  [[nodiscard]] const stats::RunningStats& monitored_wait() const {
    return monitored_wait_;
  }

  [[nodiscard]] std::uint64_t serviced() const { return serviced_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  void start_service();

  struct Queued {
    Packet packet;
    Seconds arrived;
  };

  Simulation& sim_;
  std::string name_;
  double bandwidth_bps_;
  PacketSink& next_;
  std::size_t queue_capacity_;

  std::deque<Queued> queue_;
  bool busy_ = false;
  std::uint64_t serviced_ = 0;
  std::uint64_t dropped_ = 0;
  stats::RunningStats monitored_wait_;
};

/// Poisson cross-traffic generator attached to a router.
class CrossTrafficProcess {
 public:
  /// Generates `rate` packets/second of `packet_bytes`-sized cross packets.
  CrossTrafficProcess(Simulation& sim, Router& router, double rate,
                      int packet_bytes, util::Rng& rng);

  void start();

  [[nodiscard]] std::uint64_t generated() const { return generated_; }

 private:
  void schedule_next();

  Simulation& sim_;
  Router& router_;
  double rate_;
  int packet_bytes_;
  util::Rng& rng_;
  PacketId next_id_ = 0;
  std::uint64_t generated_ = 0;
};

}  // namespace linkpad::sim
