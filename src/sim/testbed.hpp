// End-to-end simulated testbed: payload source → padding gateway GW1 →
// router path → adversary tap. One Testbed instance = one run of the
// paper's experimental apparatus at one payload rate.
//
// The tap sits AFTER the hops listed in `hops_before_tap`: an empty list
// reproduces the zero-cross lab capture "right at the output of the sender
// gateway" (Sec 5.1.1); the campus/WAN setups put 4/15 hops before the tap
// (observation point "right in front of the receiver gateway", Sec 5.3).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/gateway.hpp"
#include "sim/hop.hpp"
#include "sim/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/sniffer.hpp"
#include "sim/source.hpp"
#include "sim/timer_policy.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {

/// Payload traffic process selection.
enum class PayloadKind { kCbr, kPoisson, kOnOff };

/// Full configuration of one testbed run.
struct TestbedConfig {
  // Payload traffic entering GW1 from the protected subnet.
  PacketsPerSecond payload_rate = 10.0;
  PayloadKind payload_kind = PayloadKind::kCbr;
  int payload_bytes = 512;

  // Padding policy prototype (cloned per run) + gateway host characteristics.
  std::shared_ptr<const TimerPolicy> policy;   ///< required
  JitterParams jitter{};
  int wire_bytes = 1000;

  // Unprotected network between GW1 and the adversary's tap.
  std::vector<HopConfig> hops_before_tap;

  // PIATs discarded at the start of each run (queue/phase transients).
  std::size_t warmup_piats = 50;
};

/// One assembled, runnable instance of the system under test.
class Testbed {
 public:
  /// `rng` drives every stochastic element of this run; pass engines from
  /// RngFactory substreams for reproducible parallel experiments.
  Testbed(const TestbedConfig& config, util::Rng& rng);

  /// Run the simulation until `count` post-warmup PIATs are captured at the
  /// tap; returns them in arrival order.
  [[nodiscard]] std::vector<Seconds> collect_piats(std::size_t count);

  /// Streaming form: append `count` further PIATs to `out` and return the
  /// number appended (always `count`; the simulation never exhausts).
  /// Consecutive calls produce one contiguous PIAT stream — warmup is
  /// discarded once per Testbed, so pulling in batches yields exactly the
  /// same series as one big pull.
  std::size_t collect_piats(std::size_t count, std::vector<Seconds>& out);

  [[nodiscard]] const GatewayStats& gateway_stats() const {
    return gateway_->stats();
  }
  [[nodiscard]] const Simulation& simulation() const { return sim_; }
  [[nodiscard]] const TestbedConfig& config() const { return config_; }

  /// MEASURED on-wire bandwidth so far: emitted wire bytes (payload +
  /// padding) over elapsed sim time. Tracks padded_wire_rate_bps for the
  /// paper's policies; for payload-reactive policies this is the only
  /// truthful number. Returns 0 before any simulated time has elapsed.
  [[nodiscard]] double measured_wire_bps() const;

 private:
  // Adapter: receives GW1 emissions, pushes them through the analytic path
  // and records tap arrival times.
  class TapAdapter final : public PacketSink {
   public:
    TapAdapter(PathModel& path, util::Rng& rng, std::vector<Seconds>& out)
        : path_(path), rng_(rng), out_(out) {}
    void on_packet(const Packet& packet, Seconds now) override;

   private:
    PathModel& path_;
    util::Rng& rng_;
    std::vector<Seconds>& out_;
  };

  TestbedConfig config_;
  util::Rng& rng_;
  Simulation sim_;
  PathModel path_;
  std::vector<Seconds> tap_arrivals_;
  std::unique_ptr<TapAdapter> tap_;
  std::unique_ptr<PaddingGateway> gateway_;
  std::unique_ptr<TrafficSource> source_;
  bool started_ = false;
  std::size_t cursor_ = 0;  ///< index of the next tap arrival to diff against
};

/// Convenience one-shot: build a Testbed and collect `count` PIATs.
std::vector<Seconds> collect_piats(const TestbedConfig& config,
                                   util::Rng& rng, std::size_t count);

// ------------------------------------------------- population multiplexing

/// Offered wire rate (bits/sec) of one padded flow: the timer-driven
/// gateway emits exactly one wire_bytes packet per mean timer interval,
/// payload-independent — that invariance is the whole point of link
/// padding, and it makes the load a padded flow places on shared links a
/// constant of the policy, not of the (hidden) payload rate. For a
/// payload-reactive policy (TimerPolicy::payload_reactive) the invariant is
/// deliberately broken and this value is only the DESIGNED idle pacing —
/// the realized rate may be below it (budgeted/on-off suppress dummies) or
/// ABOVE it (adaptive-gap fires faster while draining bursts); use
/// measured_wire_rate_bps instead.
[[nodiscard]] double padded_wire_rate_bps(const TestbedConfig& config);

/// MEASURED offered wire rate of one padded flow: runs a short calibration
/// capture (`piats` tap arrivals) of `config` seeded by `rng` and returns
/// the realized on-wire bandwidth. Deterministic in the RNG stream — the
/// population layer derives it from (spec seed, calibration salt) so every
/// flow agrees on the contention each padded stream offers.
[[nodiscard]] double measured_wire_rate_bps(const TestbedConfig& config,
                                            util::Rng& rng,
                                            std::size_t piats = 2000);

/// Multiplex `extra_bps` of additional traffic into every hop before the
/// tap — the analytic form of other flows sharing this flow's path. Each
/// hop's cross utilization grows by extra_bps / hop bandwidth, saturating
/// at `max_utilization` (the M/G/1 wait model requires rho < 1; a link
/// pushed past the cap stays a maximally-congested-but-stable queue).
/// Hops already configured above the cap are left unchanged.
void add_cross_load(TestbedConfig& config, double extra_bps,
                    double max_utilization = 0.95);

}  // namespace linkpad::sim
