#include "sim/router.hpp"

#include "util/check.hpp"

namespace linkpad::sim {

Router::Router(Simulation& sim, std::string name, double bandwidth_bps,
               PacketSink& next, std::size_t queue_capacity)
    : sim_(sim), name_(std::move(name)), bandwidth_bps_(bandwidth_bps),
      next_(next), queue_capacity_(queue_capacity) {
  LINKPAD_EXPECTS(bandwidth_bps > 0.0);
  LINKPAD_EXPECTS(queue_capacity > 0);
}

void Router::on_packet(const Packet& packet, Seconds now) {
  if (queue_.size() >= queue_capacity_) {
    ++dropped_;
    return;
  }
  queue_.push_back(Queued{packet, now});
  if (!busy_) start_service();
}

void Router::start_service() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const Queued item = queue_.front();
  queue_.pop_front();

  if (item.packet.flow == FlowId::kMonitored) {
    monitored_wait_.add(sim_.now() - item.arrived);
  }

  const Seconds service =
      static_cast<Seconds>(item.packet.size_bytes) * 8.0 / bandwidth_bps_;
  sim_.schedule_in(service, [this, item] {
    ++serviced_;
    if (item.packet.flow == FlowId::kMonitored) {
      next_.on_packet(item.packet, sim_.now());
    }
    // Cross packets exit toward their own subnet here.
    start_service();
  });
}

CrossTrafficProcess::CrossTrafficProcess(Simulation& sim, Router& router,
                                         double rate, int packet_bytes,
                                         util::Rng& rng)
    : sim_(sim), router_(router), rate_(rate), packet_bytes_(packet_bytes),
      rng_(rng) {
  LINKPAD_EXPECTS(rate >= 0.0);
  LINKPAD_EXPECTS(packet_bytes > 0);
}

void CrossTrafficProcess::start() {
  if (rate_ <= 0.0) return;
  schedule_next();
}

void CrossTrafficProcess::schedule_next() {
  const Seconds gap = stats::Exponential(1.0 / rate_).sample(rng_);
  sim_.schedule_in(gap, [this] {
    Packet p;
    p.id = next_id_++;
    p.kind = PacketKind::kCross;
    p.flow = FlowId::kCrossHop;
    p.size_bytes = packet_bytes_;
    p.created = sim_.now();
    ++generated_;
    router_.on_packet(p, sim_.now());
    schedule_next();
  });
}

}  // namespace linkpad::sim
