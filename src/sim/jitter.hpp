// Gateway interrupt-jitter model: the physical mechanism behind δ_gw.
//
// The paper traces CIT's information leak to the gateway OS (Sec 4.1.2):
//  (1) context switching into the timer interrupt routine takes a random
//      time, and
//  (2) each arriving payload packet raises a NIC interrupt that can BLOCK
//      the scheduled timer interrupt for a short random time.
// Mechanism (2) couples the padded stream's timing to the payload rate:
// more payload packets per timer interval ⇒ more blocking events ⇒ larger
// Var(δ_gw) ⇒ σ_gw,h > σ_gw,l ⇒ variance ratio r > 1 (eq. 16/28).
//
// We model the emission delay of one timer interrupt as
//     δ = |N(0, σ_cs²)|  +  Σ_{i=1..A} |N(0, σ_irq²)|
// where A is the number of payload arrivals since the previous interrupt.
// Delays are one-sided (an interrupt can be late, never early). The rate-
// dependent mean of δ cancels out of inter-arrival differences, so padded
// PIAT keeps the same mean at all payload rates — the paper's assumption in
// Sec 4.2, which Fig 4(a) validates.
//
// Default constants are calibrated so the zero-cross-traffic lab system
// shows σ(PIAT) ≈ 9–10 µs and r_CIT ≈ 1.3 (see DESIGN.md "Calibration").
#pragma once

#include "stats/distributions.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace linkpad::sim {

/// Tunable jitter constants for a gateway host.
struct JitterParams {
  /// Std-dev of the context-switch component (half-normal), seconds.
  double sigma_context_switch = 10e-6;
  /// Std-dev of one NIC-interrupt blocking delay (half-normal), seconds.
  double sigma_irq_block = 6.4e-6;

  /// A perfectly clean host (useful in unit tests).
  static JitterParams none() { return {1e-12, 1e-12}; }
};

/// Samples emission delays for the padding gateway's timer interrupts.
class GatewayJitterModel {
 public:
  explicit GatewayJitterModel(const JitterParams& params);

  /// Delay added to the scheduled interrupt time when `payload_arrivals`
  /// payload packets arrived since the previous interrupt. Always ≥ 0.
  [[nodiscard]] Seconds emission_delay(util::Rng& rng,
                                       unsigned payload_arrivals) const;

  /// Marginal Var(δ) when the per-interval arrival count is Bernoulli with
  /// mean `a` ≤ 1 (used by tests to cross-check the sampler).
  [[nodiscard]] double delay_variance(double mean_arrivals_per_interval) const;

  /// EFFECTIVE contribution of gateway jitter to Var(PIAT). A PIAT is the
  /// difference of consecutive emission delays, X_k = T + δ_k − δ_{k−1}, so
  ///   Var-contribution = 2·Var(δ) − 2·Cov(δ_k, δ_{k−1})
  ///                    = 2·[σ_cs²(1−2/π) + a·E[D²]] ,  E[D²] = σ_irq².
  /// The covariance term matters: with CBR payload below 1/(2τ) pps an
  /// arrival window is never followed by another arrival window, giving
  /// Cov(A_k, A_{k−1}) = −a² — which cancels the −(aE[D])² of the marginal
  /// variance exactly; Poisson arrivals (Var(A)=a, Cov=0) land on the same
  /// expression. Validated against the DES in tests/sim/gateway_test.cpp.
  [[nodiscard]] double effective_piat_variance(
      double mean_arrivals_per_interval) const;

  [[nodiscard]] const JitterParams& params() const { return params_; }

 private:
  JitterParams params_;
  stats::HalfNormal context_switch_;
  stats::HalfNormal irq_block_;
};

}  // namespace linkpad::sim
