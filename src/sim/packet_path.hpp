// Fully packet-level end-to-end testbed: every cross-traffic packet is a
// DES event through real Router entities — no analytic M/G/1 shortcut.
//
// This is the fidelity reference for sim::Testbed (which uses the
// Pollaczek–Khinchine hop channels): `bench/abl_engine_fidelity` runs the
// identical experiment on both engines and compares PIAT moments and
// detection rates. Use this engine directly when studying effects the
// analytic channel excludes by construction (cross-traffic burstiness,
// inter-hop correlation, padded-stream self-queueing).
#pragma once

#include <memory>
#include <vector>

#include "sim/gateway.hpp"
#include "sim/hop.hpp"
#include "sim/router.hpp"
#include "sim/sniffer.hpp"
#include "sim/source.hpp"
#include "sim/testbed.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {

/// Packet-level counterpart of sim::Testbed; accepts the same config.
/// Each HopConfig becomes a Router entity with its own Poisson
/// CrossTrafficProcess at rate ρ·C/(8·cross_bytes).
class PacketLevelTestbed {
 public:
  PacketLevelTestbed(const TestbedConfig& config, util::Rng& rng);

  /// Run until `count` post-warmup PIATs are captured at the tap
  /// (the sniffer sits after the last hop).
  [[nodiscard]] std::vector<Seconds> collect_piats(std::size_t count);

  [[nodiscard]] const GatewayStats& gateway_stats() const {
    return gateway_->stats();
  }
  [[nodiscard]] const Router& router(std::size_t i) const {
    return *routers_[i];
  }
  [[nodiscard]] std::size_t hop_count() const { return routers_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const {
    return sim_.events_processed();
  }

 private:
  TestbedConfig config_;
  util::Rng& rng_;
  Simulation sim_;
  Sniffer sniffer_;
  // Entities owned in wiring order; routers_[0] is nearest the gateway.
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<CrossTrafficProcess>> cross_;
  std::unique_ptr<PaddingGateway> gateway_;
  std::unique_ptr<TrafficSource> source_;
  bool started_ = false;
  std::size_t consumed_arrivals_ = 1;  // +1: PIATs are diffs
};

}  // namespace linkpad::sim
