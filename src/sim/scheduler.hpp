// Discrete-event simulation core: a virtual clock plus a time-ordered event
// queue. Deliberately minimal — entities schedule closures; ties are broken
// by insertion order so runs are fully deterministic.
//
// Performance design (the event core bounds sweep wall-clock):
//  * Callbacks are `InlineCallback`s — a move-only callable with 64 bytes of
//    inline storage. Every closure in the simulator fits, so scheduling an
//    event never heap-allocates (a boxed fallback keeps oversized callables
//    correct rather than fast).
//  * Callback storage lives in a slab pool recycled through a free list; the
//    binary heap itself orders 24-byte POD keys, so sift operations move no
//    closures at all.
//  * Periodic entities (gateway timers, traffic sources) can bypass closures
//    entirely via the `TimerTask` fast path: a second binary heap of
//    {time, seq, TimerTask*} entries dispatched through one virtual call.
//    Both heaps share a single sequence counter, so FIFO tie-breaking among
//    simultaneous events holds across the two paths exactly as it did with
//    one queue.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace linkpad::sim {

/// Move-only callable with small-buffer storage; the event queue's closure
/// type. Any callable up to `kInlineBytes` that is nothrow-move-constructible
/// is stored inline; larger ones fall back to one heap box.
class InlineCallback {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline_v =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      static constexpr Ops kOps = {
          [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
          [](void* dst, void* src) noexcept {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
          },
          [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
      };
      ops_ = &kOps;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      static constexpr Ops kOps = {
          [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
          [](void* dst, void* src) noexcept {
            ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
          },
          [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
      };
      ops_ = &kOps;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Allocation-free periodic-event fast path: entities that fire repeatedly
/// (padding timers, traffic sources) implement this instead of scheduling a
/// fresh closure per fire. The task must outlive its pending schedules.
class TimerTask {
 public:
  virtual void on_timer(Seconds now) = 0;

 protected:
  ~TimerTask() = default;
};

/// Event-driven simulation kernel.
class Simulation {
 public:
  using Callback = InlineCallback;

  /// Current simulated time (seconds).
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must not be in the past).
  void schedule_at(Seconds t, Callback cb);

  /// Schedule `cb` after a relative delay `dt >= 0`.
  void schedule_in(Seconds dt, Callback cb);

  /// Schedule `task` to fire at absolute time `t` (timer fast path; no
  /// closure is built). FIFO order vs schedule_at events is preserved.
  void schedule_timer_at(Seconds t, TimerTask& task);

  /// Schedule `task` after a relative delay `dt >= 0`.
  void schedule_timer_in(Seconds dt, TimerTask& task);

  /// Run until the event queue drains or the clock passes `t_end`
  /// (events scheduled at exactly t_end still run).
  void run_until(Seconds t_end);

  /// Run until the event queue is empty or stop() is called.
  void run();

  /// Request termination; the current event finishes, later ones stay queued.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool empty() const {
    return cb_heap_.empty() && timer_heap_.empty();
  }

  /// Slab-pool high-water mark (callback slots ever allocated). A steady
  /// workload should plateau: slots are recycled, not grown per event.
  [[nodiscard]] std::size_t callback_pool_slots() const { return pool_.size(); }

 private:
  struct CbItem {
    Seconds t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct TimerItem {
    Seconds t;
    std::uint64_t seq;
    TimerTask* task;
  };
  /// Max-heap comparator under which the EARLIEST (t, seq) sits at front.
  struct Later {
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  /// Pop and run the earliest pending event if its time is <= t_limit.
  bool step(Seconds t_limit);

  std::vector<InlineCallback> pool_;        ///< slab of queued closures
  std::vector<std::uint32_t> free_slots_;   ///< recycled pool indices
  std::vector<CbItem> cb_heap_;             ///< binary heap of closure events
  std::vector<TimerItem> timer_heap_;       ///< binary heap of timer tasks
  Seconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace linkpad::sim
