// Discrete-event simulation core: a virtual clock plus a time-ordered event
// queue. Deliberately minimal — entities schedule closures; ties are broken
// by insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hpp"

namespace linkpad::sim {

/// Event-driven simulation kernel.
class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time (seconds).
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must not be in the past).
  void schedule_at(Seconds t, Callback cb);

  /// Schedule `cb` after a relative delay `dt >= 0`.
  void schedule_in(Seconds dt, Callback cb);

  /// Run until the event queue drains or the clock passes `t_end`
  /// (events scheduled at exactly t_end still run).
  void run_until(Seconds t_end);

  /// Run until the event queue is empty or stop() is called.
  void run();

  /// Request termination; the current event finishes, later ones stay queued.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  struct Entry {
    Seconds t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Seconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace linkpad::sim
