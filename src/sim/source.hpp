// Traffic sources feeding the sender gateway.
//
// The paper's payload has "two rate states: 10 pps and 40 pps"; we default to
// CBR (constant bit rate) like their traffic generator, and also provide
// Poisson and Markov-modulated ON/OFF sources for robustness studies —
// Theorems 1–3 only depend on the payload through the arrival counts per
// timer interval, so the detection-rate shape should survive a change of
// payload process (tested in the ablations).
//
// Sources are periodic entities, so they ride the scheduler's TimerTask
// fast path: one pending timer entry per source, no closure per packet.
#pragma once

#include <memory>
#include <string>

#include "sim/packet.hpp"
#include "sim/scheduler.hpp"
#include "stats/distributions.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace linkpad::sim {

/// A DES entity that generates payload packets into a sink.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Begin generating at the simulation's current time. The source keeps
  /// references to all three arguments until the simulation ends.
  virtual void start(Simulation& sim, PacketSink& sink, util::Rng& rng) = 0;

  /// Long-run average rate in packets/second.
  [[nodiscard]] virtual PacketsPerSecond mean_rate() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Constant bit rate: one packet every 1/rate seconds, with an optional
/// random phase so different trials do not align with the padding timer.
class CbrSource final : public TrafficSource, public TimerTask {
 public:
  CbrSource(PacketsPerSecond rate, int packet_bytes, bool random_phase = true);

  void start(Simulation& sim, PacketSink& sink, util::Rng& rng) override;
  void on_timer(Seconds now) override;
  [[nodiscard]] PacketsPerSecond mean_rate() const override { return rate_; }
  [[nodiscard]] std::string name() const override;

 private:
  PacketsPerSecond rate_;
  int packet_bytes_;
  bool random_phase_;
  PacketId next_id_ = 0;
  Simulation* sim_ = nullptr;
  PacketSink* sink_ = nullptr;
};

/// Poisson arrivals at a given mean rate.
class PoissonSource final : public TrafficSource, public TimerTask {
 public:
  PoissonSource(PacketsPerSecond rate, int packet_bytes);

  void start(Simulation& sim, PacketSink& sink, util::Rng& rng) override;
  void on_timer(Seconds now) override;
  [[nodiscard]] PacketsPerSecond mean_rate() const override { return rate_; }
  [[nodiscard]] std::string name() const override;

 private:
  void schedule_next();

  PacketsPerSecond rate_;
  int packet_bytes_;
  PacketId next_id_ = 0;
  Simulation* sim_ = nullptr;
  PacketSink* sink_ = nullptr;
  util::Rng* rng_ = nullptr;
};

/// Two-state ON/OFF source: Poisson bursts at `on_rate` during exponential
/// ON periods, silence during exponential OFF periods.
class OnOffSource final : public TrafficSource, public TimerTask {
 public:
  OnOffSource(PacketsPerSecond on_rate, Seconds mean_on, Seconds mean_off,
              int packet_bytes);

  void start(Simulation& sim, PacketSink& sink, util::Rng& rng) override;
  void on_timer(Seconds now) override;
  [[nodiscard]] PacketsPerSecond mean_rate() const override;
  [[nodiscard]] std::string name() const override;

 private:
  void schedule_next();

  PacketsPerSecond on_rate_;
  Seconds mean_on_;
  Seconds mean_off_;
  int packet_bytes_;
  bool on_ = false;
  Seconds state_ends_ = 0;
  PacketId next_id_ = 0;
  Simulation* sim_ = nullptr;
  PacketSink* sink_ = nullptr;
  util::Rng* rng_ = nullptr;
};

/// Factory helpers used by scenario presets.
std::unique_ptr<TrafficSource> make_cbr(PacketsPerSecond rate, int packet_bytes);
std::unique_ptr<TrafficSource> make_poisson(PacketsPerSecond rate, int packet_bytes);

}  // namespace linkpad::sim
