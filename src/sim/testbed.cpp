#include "sim/testbed.hpp"

#include "util/check.hpp"

namespace linkpad::sim {

void Testbed::TapAdapter::on_packet(const Packet& packet, Seconds now) {
  if (packet.flow != FlowId::kMonitored) return;
  out_.push_back(path_.traverse(now, rng_));
}

Testbed::Testbed(const TestbedConfig& config, stats::Rng& rng)
    : config_(config),
      rng_(rng),
      path_(config.hops_before_tap, config.wire_bytes) {
  LINKPAD_EXPECTS(config.policy != nullptr);
  LINKPAD_EXPECTS(config.payload_rate > 0.0);

  tap_ = std::make_unique<TapAdapter>(path_, rng_, tap_arrivals_);
  gateway_ = std::make_unique<PaddingGateway>(
      sim_, config.policy->clone(), config.jitter, rng_, *tap_,
      config.wire_bytes);

  switch (config.payload_kind) {
    case PayloadKind::kCbr:
      source_ = std::make_unique<CbrSource>(config.payload_rate,
                                            config.payload_bytes);
      break;
    case PayloadKind::kPoisson:
      source_ = std::make_unique<PoissonSource>(config.payload_rate,
                                                config.payload_bytes);
      break;
    case PayloadKind::kOnOff:
      // 50% duty cycle bursts at twice the mean rate, 1 s mean period.
      source_ = std::make_unique<OnOffSource>(2.0 * config.payload_rate, 0.5,
                                              0.5, config.payload_bytes);
      break;
  }
}

std::vector<Seconds> Testbed::collect_piats(std::size_t count) {
  LINKPAD_EXPECTS(count > 0);
  if (!started_) {
    source_->start(sim_, *gateway_, rng_);
    gateway_->start();
    started_ = true;
  }

  // Need warmup + count PIATs => warmup + count + 1 tap arrivals (beyond
  // whatever is already recorded).
  const std::size_t target =
      tap_arrivals_.size() + config_.warmup_piats + count + 1;

  // Run in slabs of simulated time until enough packets crossed the tap.
  const Seconds slab =
      static_cast<Seconds>(count + config_.warmup_piats + 2) *
      config_.policy->mean_interval();
  while (tap_arrivals_.size() < target) {
    sim_.run_until(sim_.now() + slab);
    LINKPAD_ENSURES(!sim_.empty());  // sources reschedule forever
  }

  std::vector<Seconds> piats;
  piats.reserve(count);
  const std::size_t first = tap_arrivals_.size() - count - 1;
  for (std::size_t i = first + 1; i < tap_arrivals_.size(); ++i) {
    piats.push_back(tap_arrivals_[i] - tap_arrivals_[i - 1]);
  }
  // Keep memory bounded across repeated collects.
  if (tap_arrivals_.size() > (1u << 20)) {
    tap_arrivals_.erase(tap_arrivals_.begin(), tap_arrivals_.end() - 2);
  }
  return piats;
}

std::vector<Seconds> collect_piats(const TestbedConfig& config,
                                   stats::Rng& rng, std::size_t count) {
  Testbed bed(config, rng);
  return bed.collect_piats(count);
}

}  // namespace linkpad::sim
