#include "sim/testbed.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace linkpad::sim {

void Testbed::TapAdapter::on_packet(const Packet& packet, Seconds now) {
  if (packet.flow != FlowId::kMonitored) return;
  out_.push_back(path_.traverse(now, rng_));
}

Testbed::Testbed(const TestbedConfig& config, util::Rng& rng)
    : config_(config),
      rng_(rng),
      path_(config.hops_before_tap, config.wire_bytes) {
  LINKPAD_EXPECTS(config.policy != nullptr);
  LINKPAD_EXPECTS(config.payload_rate > 0.0);

  tap_ = std::make_unique<TapAdapter>(path_, rng_, tap_arrivals_);
  gateway_ = std::make_unique<PaddingGateway>(
      sim_, config.policy->clone(), config.jitter, rng_, *tap_,
      config.wire_bytes);

  switch (config.payload_kind) {
    case PayloadKind::kCbr:
      source_ = std::make_unique<CbrSource>(config.payload_rate,
                                            config.payload_bytes);
      break;
    case PayloadKind::kPoisson:
      source_ = std::make_unique<PoissonSource>(config.payload_rate,
                                                config.payload_bytes);
      break;
    case PayloadKind::kOnOff:
      // 50% duty cycle bursts at twice the mean rate, 1 s mean period.
      source_ = std::make_unique<OnOffSource>(2.0 * config.payload_rate, 0.5,
                                              0.5, config.payload_bytes);
      break;
  }
}

std::vector<Seconds> Testbed::collect_piats(std::size_t count) {
  std::vector<Seconds> piats;
  piats.reserve(count);
  collect_piats(count, piats);
  return piats;
}

std::size_t Testbed::collect_piats(std::size_t count, std::vector<Seconds>& out) {
  LINKPAD_EXPECTS(count > 0);
  if (!started_) {
    source_->start(sim_, *gateway_, rng_);
    gateway_->start();
    started_ = true;
    // PIAT k uses arrivals k-1 and k; the first `warmup_piats` PIATs are
    // transients, so the first served PIAT diffs arrivals[warmup, warmup+1].
    cursor_ = config_.warmup_piats + 1;
  }

  const std::size_t target = cursor_ + count;  // need arrivals [0, target)

  // Run in slabs of simulated time until enough packets crossed the tap.
  const Seconds slab =
      static_cast<Seconds>(count + config_.warmup_piats + 2) *
      config_.policy->mean_interval();
  while (tap_arrivals_.size() < target) {
    sim_.run_until(sim_.now() + slab);
    LINKPAD_ENSURES(!sim_.empty());  // sources reschedule forever
  }

  for (std::size_t i = cursor_; i < target; ++i) {
    out.push_back(tap_arrivals_[i] - tap_arrivals_[i - 1]);
  }
  cursor_ = target;

  // Keep memory bounded across repeated collects: drop everything before
  // the last consumed arrival.
  if (cursor_ > (1u << 16)) {
    tap_arrivals_.erase(tap_arrivals_.begin(),
                        tap_arrivals_.begin() +
                            static_cast<std::ptrdiff_t>(cursor_ - 1));
    cursor_ = 1;
  }
  return count;
}

std::vector<Seconds> collect_piats(const TestbedConfig& config,
                                   util::Rng& rng, std::size_t count) {
  Testbed bed(config, rng);
  return bed.collect_piats(count);
}

double Testbed::measured_wire_bps() const {
  const Seconds elapsed = sim_.now();
  if (elapsed <= 0.0) return 0.0;
  const GatewayStats& gs = gateway_->stats();
  return 8.0 * static_cast<double>(gs.payload_bytes + gs.padding_bytes) /
         elapsed;
}

double measured_wire_rate_bps(const TestbedConfig& config, util::Rng& rng,
                              std::size_t piats) {
  LINKPAD_EXPECTS(piats > 0);
  Testbed bed(config, rng);
  std::vector<Seconds> sink;
  sink.reserve(piats);
  bed.collect_piats(piats, sink);
  return bed.measured_wire_bps();
}

double padded_wire_rate_bps(const TestbedConfig& config) {
  LINKPAD_EXPECTS(config.policy != nullptr);
  LINKPAD_EXPECTS(config.wire_bytes > 0);
  return 8.0 * static_cast<double>(config.wire_bytes) /
         config.policy->mean_interval();
}

void add_cross_load(TestbedConfig& config, double extra_bps,
                    double max_utilization) {
  LINKPAD_EXPECTS(extra_bps >= 0.0);
  LINKPAD_EXPECTS(max_utilization > 0.0 && max_utilization < 1.0);
  if (extra_bps == 0.0) return;
  for (HopConfig& hop : config.hops_before_tap) {
    const double loaded = hop.cross_utilization + extra_bps / hop.bandwidth_bps;
    hop.cross_utilization =
        std::max(hop.cross_utilization, std::min(loaded, max_utilization));
  }
}

}  // namespace linkpad::sim
