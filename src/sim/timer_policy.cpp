#include "sim/timer_policy.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/types.hpp"

namespace linkpad::sim {

// --------------------------------------------------- ConstantIntervalTimer

ConstantIntervalTimer::ConstantIntervalTimer(Seconds tau) : tau_(tau) {
  LINKPAD_EXPECTS(tau > 0.0);
}

Seconds ConstantIntervalTimer::next_interval(util::Rng& /*rng*/) {
  return tau_;
}

std::string ConstantIntervalTimer::name() const {
  std::ostringstream out;
  out << "CIT(tau=" << units::to_ms(tau_) << "ms)";
  return out.str();
}

std::unique_ptr<TimerPolicy> ConstantIntervalTimer::clone() const {
  return std::make_unique<ConstantIntervalTimer>(*this);
}

// ----------------------------------------------------- NormalIntervalTimer

NormalIntervalTimer::NormalIntervalTimer(Seconds tau, Seconds sigma,
                                         Seconds min_interval)
    : tau_(tau),
      sigma_(sigma),
      min_interval_(min_interval >= 0.0 ? min_interval : tau / 100.0),
      dist_(tau, sigma, min_interval >= 0.0 ? min_interval : tau / 100.0) {
  LINKPAD_EXPECTS(tau > 0.0);
  LINKPAD_EXPECTS(sigma > 0.0);
  LINKPAD_EXPECTS(min_interval_ < tau);
}

Seconds NormalIntervalTimer::next_interval(util::Rng& rng) {
  return dist_.sample(rng);
}

Seconds NormalIntervalTimer::mean_interval() const { return dist_.mean(); }

double NormalIntervalTimer::interval_variance() const {
  return dist_.variance();
}

std::string NormalIntervalTimer::name() const {
  std::ostringstream out;
  out << "VIT-normal(tau=" << units::to_ms(tau_)
      << "ms, sigma=" << units::to_us(sigma_) << "us)";
  return out.str();
}

std::unique_ptr<TimerPolicy> NormalIntervalTimer::clone() const {
  return std::make_unique<NormalIntervalTimer>(tau_, sigma_, min_interval_);
}

// ---------------------------------------------------- UniformIntervalTimer

UniformIntervalTimer::UniformIntervalTimer(Seconds tau, Seconds half_width)
    : tau_(tau), half_width_(half_width),
      dist_(tau - half_width, tau + half_width) {
  LINKPAD_EXPECTS(tau > 0.0);
  LINKPAD_EXPECTS(half_width > 0.0);
  LINKPAD_EXPECTS(half_width < tau);
}

Seconds UniformIntervalTimer::next_interval(util::Rng& rng) {
  return dist_.sample(rng);
}

double UniformIntervalTimer::interval_variance() const {
  return dist_.variance();
}

std::string UniformIntervalTimer::name() const {
  std::ostringstream out;
  out << "VIT-uniform(tau=" << units::to_ms(tau_)
      << "ms, w=" << units::to_us(half_width_) << "us)";
  return out.str();
}

std::unique_ptr<TimerPolicy> UniformIntervalTimer::clone() const {
  return std::make_unique<UniformIntervalTimer>(tau_, half_width_);
}

// ------------------------------------------------- ShiftedExponentialTimer

ShiftedExponentialTimer::ShiftedExponentialTimer(Seconds offset, Seconds scale)
    : offset_(offset), scale_(scale), dist_(scale) {
  LINKPAD_EXPECTS(offset >= 0.0);
  LINKPAD_EXPECTS(scale > 0.0);
}

Seconds ShiftedExponentialTimer::next_interval(util::Rng& rng) {
  return offset_ + dist_.sample(rng);
}

std::string ShiftedExponentialTimer::name() const {
  std::ostringstream out;
  out << "VIT-shiftexp(offset=" << units::to_ms(offset_)
      << "ms, scale=" << units::to_us(scale_) << "us)";
  return out.str();
}

std::unique_ptr<TimerPolicy> ShiftedExponentialTimer::clone() const {
  return std::make_unique<ShiftedExponentialTimer>(offset_, scale_);
}

// --------------------------------------------------------------- OnOffTimer

OnOffTimer::OnOffTimer(std::unique_ptr<TimerPolicy> base, Seconds hangover)
    : base_(std::move(base)), hangover_(hangover) {
  LINKPAD_EXPECTS(base_ != nullptr);
  LINKPAD_EXPECTS(hangover >= 0.0);
}

Seconds OnOffTimer::next_interval(util::Rng& rng) {
  return base_->next_interval(rng);
}

Seconds OnOffTimer::mean_interval() const { return base_->mean_interval(); }

double OnOffTimer::interval_variance() const {
  return base_->interval_variance();
}

void OnOffTimer::observe(const GatewayFeedback& feedback) {
  if (feedback.arrivals_since_fire > 0 || feedback.emitted_payload) {
    last_activity_ = feedback.now;
  }
  base_->observe(feedback);
}

bool OnOffTimer::spend_dummy(const GatewayFeedback& feedback) {
  // Activity during this interval keeps the pad on even before observe()
  // has refreshed the clock; otherwise pad only within the hangover window.
  // Either way the base gets the final word (and charges its own budget),
  // so decorators compose: OnOff(TokenBucket(...)) still caps dummies.
  if (feedback.arrivals_since_fire == 0 &&
      feedback.now - last_activity_ > hangover_) {
    return false;
  }
  return base_->spend_dummy(feedback);
}

std::string OnOffTimer::name() const {
  std::ostringstream out;
  out << "onoff[" << base_->name() << ", hangover=" << units::to_ms(hangover_)
      << "ms]";
  return out.str();
}

std::unique_ptr<TimerPolicy> OnOffTimer::clone() const {
  // Configuration only: the clone starts idle.
  return std::make_unique<OnOffTimer>(base_->clone(), hangover_);
}

// --------------------------------------------------------- TokenBucketTimer

TokenBucketTimer::TokenBucketTimer(std::unique_ptr<TimerPolicy> base,
                                   double dummy_budget_per_sec, double burst)
    : base_(std::move(base)),
      rate_(dummy_budget_per_sec),
      burst_(burst),
      tokens_(burst) {
  LINKPAD_EXPECTS(base_ != nullptr);
  LINKPAD_EXPECTS(dummy_budget_per_sec >= 0.0);
  LINKPAD_EXPECTS(burst >= 0.0);
  // A positive budget with a bucket that can never hold one whole token
  // (burst < 1) would silently emit NOTHING forever — reject the trap.
  LINKPAD_EXPECTS(dummy_budget_per_sec == 0.0 || burst >= 1.0);
}

Seconds TokenBucketTimer::next_interval(util::Rng& rng) {
  return base_->next_interval(rng);
}

Seconds TokenBucketTimer::mean_interval() const {
  return base_->mean_interval();
}

double TokenBucketTimer::interval_variance() const {
  return base_->interval_variance();
}

void TokenBucketTimer::refill(Seconds now) {
  if (now > last_refill_) {
    tokens_ = std::min(burst_, tokens_ + (now - last_refill_) * rate_);
    last_refill_ = now;
  }
}

void TokenBucketTimer::observe(const GatewayFeedback& feedback) {
  // Forward link state so reactive bases (e.g. Budget(OnOff(...))) keep
  // their own clocks current.
  base_->observe(feedback);
}

bool TokenBucketTimer::spend_dummy(const GatewayFeedback& feedback) {
  refill(feedback.now);
  if (tokens_ < 1.0) return false;
  if (!base_->spend_dummy(feedback)) return false;
  tokens_ -= 1.0;
  return true;
}

std::string TokenBucketTimer::name() const {
  std::ostringstream out;
  out << "budget[" << base_->name() << ", dummies=" << rate_
      << "/s, burst=" << burst_ << "]";
  return out.str();
}

std::unique_ptr<TimerPolicy> TokenBucketTimer::clone() const {
  // Configuration only: the clone starts with a full bucket at t = 0.
  return std::make_unique<TokenBucketTimer>(base_->clone(), rate_, burst_);
}

// ---------------------------------------------------------- AdaptiveGapTimer

AdaptiveGapTimer::AdaptiveGapTimer(Seconds base_gap, double gain,
                                   Seconds min_gap)
    : base_gap_(base_gap), gain_(gain), min_gap_(min_gap) {
  LINKPAD_EXPECTS(base_gap > 0.0);
  LINKPAD_EXPECTS(gain >= 0.0);
  LINKPAD_EXPECTS(min_gap > 0.0 && min_gap <= base_gap);
}

Seconds AdaptiveGapTimer::next_interval(util::Rng& /*rng*/) {
  const Seconds gap =
      base_gap_ / (1.0 + gain_ * static_cast<double>(queue_depth_));
  return std::max(min_gap_, gap);
}

void AdaptiveGapTimer::observe(const GatewayFeedback& feedback) {
  queue_depth_ = feedback.queue_depth;
}

std::string AdaptiveGapTimer::name() const {
  std::ostringstream out;
  out << "adaptive-gap(base=" << units::to_ms(base_gap_)
      << "ms, gain=" << gain_ << ", min=" << units::to_ms(min_gap_) << "ms)";
  return out.str();
}

std::unique_ptr<TimerPolicy> AdaptiveGapTimer::clone() const {
  // Configuration only: the clone starts with an empty-queue view.
  return std::make_unique<AdaptiveGapTimer>(base_gap_, gain_, min_gap_);
}

}  // namespace linkpad::sim
