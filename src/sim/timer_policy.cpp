#include "sim/timer_policy.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/types.hpp"

namespace linkpad::sim {

// --------------------------------------------------- ConstantIntervalTimer

ConstantIntervalTimer::ConstantIntervalTimer(Seconds tau) : tau_(tau) {
  LINKPAD_EXPECTS(tau > 0.0);
}

Seconds ConstantIntervalTimer::next_interval(util::Rng& /*rng*/) {
  return tau_;
}

std::string ConstantIntervalTimer::name() const {
  std::ostringstream out;
  out << "CIT(tau=" << units::to_ms(tau_) << "ms)";
  return out.str();
}

std::unique_ptr<TimerPolicy> ConstantIntervalTimer::clone() const {
  return std::make_unique<ConstantIntervalTimer>(*this);
}

// ----------------------------------------------------- NormalIntervalTimer

NormalIntervalTimer::NormalIntervalTimer(Seconds tau, Seconds sigma,
                                         Seconds min_interval)
    : tau_(tau),
      sigma_(sigma),
      min_interval_(min_interval >= 0.0 ? min_interval : tau / 100.0),
      dist_(tau, sigma, min_interval >= 0.0 ? min_interval : tau / 100.0) {
  LINKPAD_EXPECTS(tau > 0.0);
  LINKPAD_EXPECTS(sigma > 0.0);
  LINKPAD_EXPECTS(min_interval_ < tau);
}

Seconds NormalIntervalTimer::next_interval(util::Rng& rng) {
  return dist_.sample(rng);
}

Seconds NormalIntervalTimer::mean_interval() const { return dist_.mean(); }

double NormalIntervalTimer::interval_variance() const {
  return dist_.variance();
}

std::string NormalIntervalTimer::name() const {
  std::ostringstream out;
  out << "VIT-normal(tau=" << units::to_ms(tau_)
      << "ms, sigma=" << units::to_us(sigma_) << "us)";
  return out.str();
}

std::unique_ptr<TimerPolicy> NormalIntervalTimer::clone() const {
  return std::make_unique<NormalIntervalTimer>(tau_, sigma_, min_interval_);
}

// ---------------------------------------------------- UniformIntervalTimer

UniformIntervalTimer::UniformIntervalTimer(Seconds tau, Seconds half_width)
    : tau_(tau), half_width_(half_width),
      dist_(tau - half_width, tau + half_width) {
  LINKPAD_EXPECTS(tau > 0.0);
  LINKPAD_EXPECTS(half_width > 0.0);
  LINKPAD_EXPECTS(half_width < tau);
}

Seconds UniformIntervalTimer::next_interval(util::Rng& rng) {
  return dist_.sample(rng);
}

double UniformIntervalTimer::interval_variance() const {
  return dist_.variance();
}

std::string UniformIntervalTimer::name() const {
  std::ostringstream out;
  out << "VIT-uniform(tau=" << units::to_ms(tau_)
      << "ms, w=" << units::to_us(half_width_) << "us)";
  return out.str();
}

std::unique_ptr<TimerPolicy> UniformIntervalTimer::clone() const {
  return std::make_unique<UniformIntervalTimer>(tau_, half_width_);
}

// ------------------------------------------------- ShiftedExponentialTimer

ShiftedExponentialTimer::ShiftedExponentialTimer(Seconds offset, Seconds scale)
    : offset_(offset), scale_(scale), dist_(scale) {
  LINKPAD_EXPECTS(offset >= 0.0);
  LINKPAD_EXPECTS(scale > 0.0);
}

Seconds ShiftedExponentialTimer::next_interval(util::Rng& rng) {
  return offset_ + dist_.sample(rng);
}

std::string ShiftedExponentialTimer::name() const {
  std::ostringstream out;
  out << "VIT-shiftexp(offset=" << units::to_ms(offset_)
      << "ms, scale=" << units::to_us(scale_) << "us)";
  return out.str();
}

std::unique_ptr<TimerPolicy> ShiftedExponentialTimer::clone() const {
  return std::make_unique<ShiftedExponentialTimer>(offset_, scale_);
}

}  // namespace linkpad::sim
