// The padding gateway GW1 (paper Sec 3.2).
//
// Behaviour exactly as specified: payload packets from the protected subnet
// are queued; an interrupt-driven timer fires at designed instants
// S_k = S_{k−1} + T_k (absolute scheduling, so CIT does not drift); at each
// fire the gateway emits the head-of-queue payload packet, or a dummy if the
// queue is empty. The *actual* emission happens at S_k + δ_k where δ_k comes
// from the GatewayJitterModel and depends on how many payload packets
// arrived since the previous interrupt — the leak under study.
//
// All packets leave with the same constant `wire_bytes` size (Sec 3.2
// remark 3): the adversary learns nothing from sizes.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "sim/jitter.hpp"
#include "sim/packet.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer_policy.hpp"
#include "stats/descriptive.hpp"
#include "stats/quantile_sketch.hpp"
#include "util/rng.hpp"

namespace linkpad::sim {

/// Operational counters exposed for invariant checks, QoS reporting and the
/// defense frontier's overhead accounting (DESIGN.md §2.8).
struct GatewayStats {
  std::uint64_t payload_in = 0;       ///< payload packets accepted
  std::uint64_t payload_out = 0;      ///< payload packets emitted
  std::uint64_t dummy_out = 0;        ///< dummy packets emitted
  std::uint64_t dropped = 0;          ///< payload drops (queue overflow)
  std::uint64_t timer_fires = 0;      ///< interrupts processed
  /// Fires that emitted NOTHING: empty queue and the policy declined a
  /// dummy (on/off padding off-phase, exhausted token bucket).
  std::uint64_t suppressed_fires = 0;
  std::uint64_t payload_bytes = 0;    ///< wire bytes carrying payload
  std::uint64_t padding_bytes = 0;    ///< wire bytes carrying dummies
  stats::RunningStats queueing_delay; ///< payload wait in GW1 (QoS metric)
  /// Streaming percentiles of the payload queueing delay (P², ~1% sketch
  /// accuracy) — the latency half of the overhead/detectability frontier.
  stats::P2Quantile delay_p50{0.5};
  stats::P2Quantile delay_p95{0.95};
  stats::P2Quantile delay_p99{0.99};
};

/// Sender-side padding gateway. The interrupt timer rides the scheduler's
/// TimerTask fast path: one pending heap entry per designed fire, no closure.
class PaddingGateway final : public PacketSink, public TimerTask {
 public:
  /// `queue_capacity` bounds the payload queue (packets beyond it drop, as a
  /// real box would); the paper's rates (≤ 40 pps payload vs 100 pps timer)
  /// keep the queue nearly empty.
  PaddingGateway(Simulation& sim, std::unique_ptr<TimerPolicy> policy,
                 const JitterParams& jitter, util::Rng& rng,
                 PacketSink& downstream, int wire_bytes = 1000,
                 std::size_t queue_capacity = 4096);

  /// Payload ingress (TrafficSource sink interface).
  void on_packet(const Packet& packet, Seconds now) override;

  /// Designed timer interrupt S_k (TimerTask fast path).
  void on_timer(Seconds now) override;

  /// Arm the timer; first designed fire after one interval from now.
  void start();

  [[nodiscard]] const GatewayStats& stats() const { return stats_; }
  [[nodiscard]] const TimerPolicy& policy() const { return *policy_; }

  /// DESIGNED wire rate = 1 / E[T]. For the paper's policies this is the
  /// constant emitted rate regardless of payload — the perfect-secrecy
  /// property padding is built on. For payload-reactive policies the
  /// realized rate can sit on either side of it; measure it instead
  /// (Testbed::measured_wire_bps).
  [[nodiscard]] PacketsPerSecond wire_rate() const;

 private:
  Simulation& sim_;
  std::unique_ptr<TimerPolicy> policy_;
  GatewayJitterModel jitter_;
  util::Rng& rng_;
  PacketSink& downstream_;
  int wire_bytes_;
  std::size_t queue_capacity_;

  std::deque<Packet> queue_;
  unsigned arrivals_since_fire_ = 0;
  Seconds next_designed_fire_ = 0;
  PacketId next_wire_id_ = 0;
  GatewayStats stats_;
};

}  // namespace linkpad::sim
