// Padding timer policies: the single tunable parameter of a link-padding
// gateway (paper Sec 3.2 remark 2).
//
//  * CIT — constant interval timer: T ≡ τ (the common choice, shown by the
//    paper to leak through sample variance / entropy).
//  * VIT — variable interval timer: T drawn per interrupt from a positive
//    distribution. The paper models T ~ N(τ, σ_T²); we truncate at a minimum
//    interval so the timer stays physically realizable for any σ_T.
//  * Uniform / shifted-exponential VIT variants are extensions used by the
//    `abl_vit_distributions` bench: Theorems 1–3 depend on T only through
//    σ_T², so distribution shape should not matter — the bench verifies it.
#pragma once

#include <memory>
#include <string>

#include "stats/distributions.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace linkpad::sim {

/// Strategy producing successive designed timer intervals T_k.
class TimerPolicy {
 public:
  virtual ~TimerPolicy() = default;

  /// Draw the next designed interrupt interval (strictly positive).
  virtual Seconds next_interval(util::Rng& rng) = 0;

  /// E[T]: mean designed interval.
  [[nodiscard]] virtual Seconds mean_interval() const = 0;

  /// Var(T) = σ_T² of eq. (9); zero for CIT.
  [[nodiscard]] virtual double interval_variance() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy (each parallel trial owns an independent policy object).
  [[nodiscard]] virtual std::unique_ptr<TimerPolicy> clone() const = 0;
};

/// CIT: T ≡ tau.
class ConstantIntervalTimer final : public TimerPolicy {
 public:
  explicit ConstantIntervalTimer(Seconds tau);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override { return tau_; }
  [[nodiscard]] double interval_variance() const override { return 0.0; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

 private:
  Seconds tau_;
};

/// VIT with normal intervals N(tau, sigma²) truncated to [min_interval, ∞).
class NormalIntervalTimer final : public TimerPolicy {
 public:
  /// `min_interval` defaults to tau/100 (a timer cannot fire arbitrarily
  /// fast; the gateway needs time to emit the previous packet).
  NormalIntervalTimer(Seconds tau, Seconds sigma, Seconds min_interval = -1.0);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override;
  [[nodiscard]] double interval_variance() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

  [[nodiscard]] Seconds sigma_parameter() const { return sigma_; }

 private:
  Seconds tau_;
  Seconds sigma_;
  Seconds min_interval_;
  stats::TruncatedNormal dist_;
};

/// VIT with uniform intervals on [tau−w, tau+w] (same variance as a normal
/// when w = σ_T·√3).
class UniformIntervalTimer final : public TimerPolicy {
 public:
  UniformIntervalTimer(Seconds tau, Seconds half_width);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override { return tau_; }
  [[nodiscard]] double interval_variance() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

 private:
  Seconds tau_;
  Seconds half_width_;
  stats::Uniform dist_;
};

/// VIT with shifted-exponential intervals: T = offset + Exp(scale);
/// mean = offset + scale, variance = scale² (a skewed alternative).
class ShiftedExponentialTimer final : public TimerPolicy {
 public:
  ShiftedExponentialTimer(Seconds offset, Seconds scale);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override { return offset_ + scale_; }
  [[nodiscard]] double interval_variance() const override { return scale_ * scale_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

 private:
  Seconds offset_;
  Seconds scale_;
  stats::Exponential dist_;
};

}  // namespace linkpad::sim
