// Padding timer policies: the single tunable parameter of a link-padding
// gateway (paper Sec 3.2 remark 2).
//
//  * CIT — constant interval timer: T ≡ τ (the common choice, shown by the
//    paper to leak through sample variance / entropy).
//  * VIT — variable interval timer: T drawn per interrupt from a positive
//    distribution. The paper models T ~ N(τ, σ_T²); we truncate at a minimum
//    interval so the timer stays physically realizable for any σ_T.
//  * Uniform / shifted-exponential VIT variants are extensions used by the
//    `abl_vit_distributions` bench: Theorems 1–3 depend on T only through
//    σ_T², so distribution shape should not matter — the bench verifies it.
//
// Beyond the paper's two points, the defense-frontier policies (DESIGN.md
// §2.8) REACT to the payload through the gateway's queue-feedback seam:
//  * OnOffTimer — idle-stop padding: dummies only near payload activity.
//  * TokenBucketTimer — budgeted padding: a hard cap on emitted dummy rate.
//  * AdaptiveGapTimer — the designed gap shrinks with gateway queue depth.
// These deliberately break the constant-wire-rate invariant; consumers that
// need a flow's offered load must measure it (sim::measured_wire_rate_bps)
// whenever payload_reactive() is true.
#pragma once

#include <memory>
#include <string>

#include "stats/distributions.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace linkpad::sim {

/// Link-local state the gateway hands to payload-reactive policies at every
/// timer fire — the queue-feedback seam. Stateless policies ignore it.
struct GatewayFeedback {
  Seconds now = 0.0;                 ///< sim time of this interrupt routine
  std::size_t queue_depth = 0;       ///< payload packets waiting (post-dequeue)
  unsigned arrivals_since_fire = 0;  ///< payload arrivals since previous fire
  bool emitted_payload = false;      ///< this fire forwarded queued payload
  bool emitted_dummy = false;        ///< this fire emitted a dummy
};

/// Strategy producing successive designed timer intervals T_k.
class TimerPolicy {
 public:
  virtual ~TimerPolicy() = default;

  /// Draw the next designed interrupt interval (strictly positive).
  virtual Seconds next_interval(util::Rng& rng) = 0;

  /// E[T]: mean designed interval. For payload-reactive policies this is
  /// the designed (idle) pacing, NOT the realized wire rate.
  [[nodiscard]] virtual Seconds mean_interval() const = 0;

  /// Var(T) = σ_T² of eq. (9); zero for CIT. Designed variance only — a
  /// reactive policy's realized interval process is payload-driven.
  [[nodiscard]] virtual double interval_variance() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Queue-feedback seam: called by the gateway once per timer fire, after
  /// the emission decision and before the next interval is drawn. Stateful
  /// policies update their view of the link here; default is a no-op.
  virtual void observe(const GatewayFeedback& feedback) {
    (void)feedback;
  }

  /// Whether the gateway should emit a dummy at a fire that found the queue
  /// empty. Called at most once per fire, only when the queue is empty and
  /// before observe(); `feedback.emitted_*` are not yet set. Budgeted
  /// policies spend their budget here. Default: always pad (the paper's
  /// behaviour). Must not consume gateway RNG — emission decisions are a
  /// deterministic function of the observed link state.
  [[nodiscard]] virtual bool spend_dummy(const GatewayFeedback& feedback) {
    (void)feedback;
    return true;
  }

  /// True when emissions react to payload (on/off, budgeted, adaptive): the
  /// constant-wire-rate invariant does NOT hold, so shared-link load must be
  /// measured (sim::measured_wire_rate_bps), never derived from
  /// mean_interval().
  [[nodiscard]] virtual bool payload_reactive() const { return false; }

  /// Deep copy (each parallel trial owns an independent policy object).
  /// Clones copy CONFIGURATION but reset runtime state: a fresh testbed
  /// must not inherit another run's bucket level or activity clock.
  [[nodiscard]] virtual std::unique_ptr<TimerPolicy> clone() const = 0;
};

/// CIT: T ≡ tau.
class ConstantIntervalTimer final : public TimerPolicy {
 public:
  explicit ConstantIntervalTimer(Seconds tau);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override { return tau_; }
  [[nodiscard]] double interval_variance() const override { return 0.0; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

 private:
  Seconds tau_;
};

/// VIT with normal intervals N(tau, sigma²) truncated to [min_interval, ∞).
class NormalIntervalTimer final : public TimerPolicy {
 public:
  /// `min_interval` defaults to tau/100 (a timer cannot fire arbitrarily
  /// fast; the gateway needs time to emit the previous packet).
  NormalIntervalTimer(Seconds tau, Seconds sigma, Seconds min_interval = -1.0);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override;
  [[nodiscard]] double interval_variance() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

  [[nodiscard]] Seconds sigma_parameter() const { return sigma_; }

 private:
  Seconds tau_;
  Seconds sigma_;
  Seconds min_interval_;
  stats::TruncatedNormal dist_;
};

/// VIT with uniform intervals on [tau−w, tau+w] (same variance as a normal
/// when w = σ_T·√3).
class UniformIntervalTimer final : public TimerPolicy {
 public:
  UniformIntervalTimer(Seconds tau, Seconds half_width);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override { return tau_; }
  [[nodiscard]] double interval_variance() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

 private:
  Seconds tau_;
  Seconds half_width_;
  stats::Uniform dist_;
};

/// VIT with shifted-exponential intervals: T = offset + Exp(scale);
/// mean = offset + scale, variance = scale² (a skewed alternative).
class ShiftedExponentialTimer final : public TimerPolicy {
 public:
  ShiftedExponentialTimer(Seconds offset, Seconds scale);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override { return offset_ + scale_; }
  [[nodiscard]] double interval_variance() const override { return scale_ * scale_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

 private:
  Seconds offset_;
  Seconds scale_;
  stats::Exponential dist_;
};

// ------------------------------------------- payload-reactive policies

/// On/off (idle-stop) padding: pace like `base`, but emit dummies only
/// within `hangover` seconds of the last payload activity (an arrival or a
/// forwarded payload packet). An idle protected subnet sends NOTHING — zero
/// idle overhead — at the price of leaking coarse on/off activity, the
/// weakness practical detectors exploit against naive adaptive shaping.
class OnOffTimer final : public TimerPolicy {
 public:
  OnOffTimer(std::unique_ptr<TimerPolicy> base, Seconds hangover);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override;
  [[nodiscard]] double interval_variance() const override;
  [[nodiscard]] std::string name() const override;
  void observe(const GatewayFeedback& feedback) override;
  [[nodiscard]] bool spend_dummy(const GatewayFeedback& feedback) override;
  [[nodiscard]] bool payload_reactive() const override { return true; }
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

  [[nodiscard]] Seconds hangover() const { return hangover_; }

 private:
  std::unique_ptr<TimerPolicy> base_;
  Seconds hangover_;
  /// Time of the last observed payload activity; starts "idle" so a silent
  /// subnet never pads before its first packet.
  Seconds last_activity_ = -1e300;
};

/// Token-bucket budgeted padding: pace like `base`, but dummy emissions
/// spend from a bucket of capacity `burst` refilled at `dummy_budget`
/// tokens/sec. The dummies emitted over any horizon t are therefore capped
/// at burst + dummy_budget·t — a HARD overhead budget (property-tested on
/// random streams). Payload is never blocked; only dummies cost tokens.
/// A positive budget requires burst ≥ 1 (a bucket that can never hold one
/// whole token would silently never pad); budget 0 means no dummies beyond
/// the initial burst.
class TokenBucketTimer final : public TimerPolicy {
 public:
  TokenBucketTimer(std::unique_ptr<TimerPolicy> base,
                   double dummy_budget_per_sec, double burst = 1.0);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override;
  [[nodiscard]] double interval_variance() const override;
  [[nodiscard]] std::string name() const override;
  void observe(const GatewayFeedback& feedback) override;
  [[nodiscard]] bool spend_dummy(const GatewayFeedback& feedback) override;
  [[nodiscard]] bool payload_reactive() const override { return true; }
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

  [[nodiscard]] double dummy_budget_per_sec() const { return rate_; }
  [[nodiscard]] double burst() const { return burst_; }

 private:
  void refill(Seconds now);

  std::unique_ptr<TimerPolicy> base_;
  double rate_;
  double burst_;
  double tokens_;  ///< starts full (= burst_)
  Seconds last_refill_ = 0.0;
};

/// Adaptive-gap padding: the designed interval reacts to gateway queue
/// depth — gap = max(min_gap, base_gap / (1 + gain·depth)) — so bursts
/// drain quickly while an idle link pads at the slow base rate. Wire rate
/// tracks payload (low overhead); the gap process is payload-correlated,
/// which is exactly the leak the defense frontier quantifies.
class AdaptiveGapTimer final : public TimerPolicy {
 public:
  AdaptiveGapTimer(Seconds base_gap, double gain, Seconds min_gap);

  Seconds next_interval(util::Rng& rng) override;
  [[nodiscard]] Seconds mean_interval() const override { return base_gap_; }
  [[nodiscard]] double interval_variance() const override { return 0.0; }
  [[nodiscard]] std::string name() const override;
  void observe(const GatewayFeedback& feedback) override;
  [[nodiscard]] bool payload_reactive() const override { return true; }
  [[nodiscard]] std::unique_ptr<TimerPolicy> clone() const override;

  [[nodiscard]] Seconds base_gap() const { return base_gap_; }
  [[nodiscard]] Seconds min_gap() const { return min_gap_; }

 private:
  Seconds base_gap_;
  double gain_;
  Seconds min_gap_;
  std::size_t queue_depth_ = 0;
};

}  // namespace linkpad::sim
