// Diurnal (time-of-day) load profiles for the campus / WAN experiments.
//
// Fig 8 plots detection rate over a full captured day (campus data from
// 2003-03-24, WAN from 2003-03-26). The dominant effect is that network
// utilization — and with it σ_net — follows a daily rhythm: quiet around
// 04:00, busy through the afternoon. We model utilization as a smooth
// day curve built from a base level plus a work-hours bump, the standard
// shape of enterprise/Internet diurnal load.
#pragma once

#include "util/types.hpp"

namespace linkpad::sim {

/// Smooth 24-hour utilization profile.
class DiurnalProfile {
 public:
  /// `quiet` = utilization at the nightly trough, `peak` = at the afternoon
  /// maximum, `peak_hour` in [0,24), `width_hours` controls how wide the
  /// daytime bump is.
  DiurnalProfile(double quiet, double peak, double peak_hour = 15.0,
                 double width_hours = 5.0);

  /// Utilization at `hour` in [0, 24) (wraps around midnight).
  [[nodiscard]] double utilization_at(double hour) const;

  /// Scale factor relative to the profile's own mean; convenient for
  /// PathModel::scale_utilization.
  [[nodiscard]] double scale_at(double hour) const;

  [[nodiscard]] double quiet() const { return quiet_; }
  [[nodiscard]] double peak() const { return peak_; }

 private:
  double quiet_;
  double peak_;
  double peak_hour_;
  double width_hours_;
  double mean_;
};

}  // namespace linkpad::sim
