#include "sim/jitter.hpp"

#include <cmath>

#include "util/check.hpp"

namespace linkpad::sim {

GatewayJitterModel::GatewayJitterModel(const JitterParams& params)
    : params_(params),
      context_switch_(params.sigma_context_switch),
      irq_block_(params.sigma_irq_block) {
  LINKPAD_EXPECTS(params.sigma_context_switch > 0.0);
  LINKPAD_EXPECTS(params.sigma_irq_block > 0.0);
}

Seconds GatewayJitterModel::emission_delay(util::Rng& rng,
                                           unsigned payload_arrivals) const {
  Seconds delay = context_switch_.sample(rng);
  for (unsigned i = 0; i < payload_arrivals; ++i) {
    delay += irq_block_.sample(rng);
  }
  return delay;
}

double GatewayJitterModel::effective_piat_variance(
    double mean_arrivals_per_interval) const {
  const double s2 = params_.sigma_irq_block * params_.sigma_irq_block;
  const double cs2 =
      params_.sigma_context_switch * params_.sigma_context_switch;
  const double cs_var = cs2 * (1.0 - 2.0 / M_PI);
  return 2.0 * (cs_var + mean_arrivals_per_interval * s2);
}

double GatewayJitterModel::delay_variance(
    double mean_arrivals_per_interval) const {
  // For a Bernoulli/Poisson number A of blocking events with mean a:
  // Var(Σ) = a·E[D²] − a·E[D]² + Var(A)·E[D]² ≈ a·E[D²] − a²·E[D]²·0 ...
  // For the CBR payloads we use, A is 0/1 with P(1)=a (a ≤ 1):
  //   Var = a·E[D²] − (a·E[D])².
  const double s2 = params_.sigma_irq_block * params_.sigma_irq_block;
  const double ed = params_.sigma_irq_block * std::sqrt(2.0 / M_PI);
  const double a = mean_arrivals_per_interval;
  const double blocking = a * s2 - (a * ed) * (a * ed);
  const double cs2 = params_.sigma_context_switch * params_.sigma_context_switch;
  const double cs_var = cs2 * (1.0 - 2.0 / M_PI);
  return cs_var + blocking;
}

}  // namespace linkpad::sim
