#include "sim/source.hpp"

#include <sstream>

#include "util/check.hpp"

namespace linkpad::sim {

// -------------------------------------------------------------- CbrSource

CbrSource::CbrSource(PacketsPerSecond rate, int packet_bytes, bool random_phase)
    : rate_(rate), packet_bytes_(packet_bytes), random_phase_(random_phase) {
  LINKPAD_EXPECTS(rate > 0.0);
  LINKPAD_EXPECTS(packet_bytes > 0);
}

void CbrSource::start(Simulation& sim, PacketSink& sink, util::Rng& rng) {
  sim_ = &sim;
  sink_ = &sink;
  const Seconds period = 1.0 / rate_;
  const Seconds phase = random_phase_ ? rng.uniform(0.0, period) : 0.0;
  sim.schedule_timer_in(phase, *this);
}

void CbrSource::on_timer(Seconds now) {
  Packet p;
  p.id = next_id_++;
  p.kind = PacketKind::kPayload;
  p.flow = FlowId::kMonitored;
  p.size_bytes = packet_bytes_;
  p.created = now;
  sink_->on_packet(p, now);
  sim_->schedule_timer_in(1.0 / rate_, *this);
}

std::string CbrSource::name() const {
  std::ostringstream out;
  out << "CBR(" << rate_ << "pps)";
  return out.str();
}

// ---------------------------------------------------------- PoissonSource

PoissonSource::PoissonSource(PacketsPerSecond rate, int packet_bytes)
    : rate_(rate), packet_bytes_(packet_bytes) {
  LINKPAD_EXPECTS(rate > 0.0);
  LINKPAD_EXPECTS(packet_bytes > 0);
}

void PoissonSource::start(Simulation& sim, PacketSink& sink, util::Rng& rng) {
  sim_ = &sim;
  sink_ = &sink;
  rng_ = &rng;
  schedule_next();
}

void PoissonSource::schedule_next() {
  const Seconds gap = stats::Exponential(1.0 / rate_).sample(*rng_);
  sim_->schedule_timer_in(gap, *this);
}

void PoissonSource::on_timer(Seconds now) {
  Packet p;
  p.id = next_id_++;
  p.kind = PacketKind::kPayload;
  p.flow = FlowId::kMonitored;
  p.size_bytes = packet_bytes_;
  p.created = now;
  sink_->on_packet(p, now);
  schedule_next();
}

std::string PoissonSource::name() const {
  std::ostringstream out;
  out << "Poisson(" << rate_ << "pps)";
  return out.str();
}

// ------------------------------------------------------------ OnOffSource

OnOffSource::OnOffSource(PacketsPerSecond on_rate, Seconds mean_on,
                         Seconds mean_off, int packet_bytes)
    : on_rate_(on_rate), mean_on_(mean_on), mean_off_(mean_off),
      packet_bytes_(packet_bytes) {
  LINKPAD_EXPECTS(on_rate > 0.0);
  LINKPAD_EXPECTS(mean_on > 0.0);
  LINKPAD_EXPECTS(mean_off > 0.0);
}

PacketsPerSecond OnOffSource::mean_rate() const {
  return on_rate_ * mean_on_ / (mean_on_ + mean_off_);
}

void OnOffSource::start(Simulation& sim, PacketSink& sink, util::Rng& rng) {
  sim_ = &sim;
  sink_ = &sink;
  rng_ = &rng;
  on_ = true;
  state_ends_ = sim.now() + stats::Exponential(mean_on_).sample(rng);
  schedule_next();
}

void OnOffSource::schedule_next() {
  // Advance through OFF periods until the next emission instant.
  Seconds t = sim_->now();
  for (;;) {
    if (on_) {
      const Seconds gap = stats::Exponential(1.0 / on_rate_).sample(*rng_);
      if (t + gap <= state_ends_) {
        t += gap;
        break;
      }
      t = state_ends_;
      on_ = false;
      state_ends_ = t + stats::Exponential(mean_off_).sample(*rng_);
    } else {
      t = state_ends_;
      on_ = true;
      state_ends_ = t + stats::Exponential(mean_on_).sample(*rng_);
    }
  }
  sim_->schedule_timer_at(t, *this);
}

void OnOffSource::on_timer(Seconds now) {
  Packet p;
  p.id = next_id_++;
  p.kind = PacketKind::kPayload;
  p.flow = FlowId::kMonitored;
  p.size_bytes = packet_bytes_;
  p.created = now;
  sink_->on_packet(p, now);
  schedule_next();
}

std::string OnOffSource::name() const {
  std::ostringstream out;
  out << "OnOff(on=" << on_rate_ << "pps, duty="
      << mean_on_ / (mean_on_ + mean_off_) << ")";
  return out.str();
}

// ---------------------------------------------------------------- helpers

std::unique_ptr<TrafficSource> make_cbr(PacketsPerSecond rate, int packet_bytes) {
  return std::make_unique<CbrSource>(rate, packet_bytes);
}

std::unique_ptr<TrafficSource> make_poisson(PacketsPerSecond rate,
                                            int packet_bytes) {
  return std::make_unique<PoissonSource>(rate, packet_bytes);
}

}  // namespace linkpad::sim
