#include "sim/sniffer.hpp"

namespace linkpad::sim {

void Sniffer::on_packet(const Packet& packet, Seconds now) {
  if (packet.flow == FlowId::kMonitored) {
    arrivals_.push_back(now);
  }
  if (next_ != nullptr) {
    next_->on_packet(packet, now);
  }
}

std::vector<Seconds> Sniffer::piats() const {
  std::vector<Seconds> out;
  if (arrivals_.size() < 2) return out;
  out.reserve(arrivals_.size() - 1);
  for (std::size_t i = 1; i < arrivals_.size(); ++i) {
    out.push_back(arrivals_[i] - arrivals_[i - 1]);
  }
  return out;
}

void ReceiverGateway::on_packet(const Packet& packet, Seconds now) {
  if (packet.flow != FlowId::kMonitored) return;
  if (packet.kind == PacketKind::kPayload) {
    ++payload_;
    delays_.push_back(now - packet.created);
  } else {
    ++dummy_;
  }
}

}  // namespace linkpad::sim
