// The adversary's capture device (the paper uses an Agilent J6841A network
// analyzer). Records arrival timestamps of the monitored flow at its tap
// point and yields the packet inter-arrival time (PIAT) series that every
// feature statistic is computed from.
#pragma once

#include <vector>

#include "sim/packet.hpp"
#include "util/types.hpp"

namespace linkpad::sim {

/// Timestamp recorder; also usable as a pass-through tap (forwards packets
/// to `next` if given).
class Sniffer final : public PacketSink {
 public:
  explicit Sniffer(PacketSink* next = nullptr) : next_(next) {}

  void on_packet(const Packet& packet, Seconds now) override;

  /// Raw arrival times of the monitored flow.
  [[nodiscard]] const std::vector<Seconds>& arrival_times() const {
    return arrivals_;
  }

  /// Inter-arrival times X_k = t_k − t_{k−1} (size = arrivals − 1).
  [[nodiscard]] std::vector<Seconds> piats() const;

  /// Drop everything captured so far (e.g. warm-up packets).
  void clear() { arrivals_.clear(); }

  [[nodiscard]] std::size_t captured() const { return arrivals_.size(); }

 private:
  std::vector<Seconds> arrivals_;
  PacketSink* next_;
};

/// Terminal sink counting payload vs dummy — stands in for the receiving
/// gateway GW2, which strips dummies and forwards payload into subnet B.
class ReceiverGateway final : public PacketSink {
 public:
  void on_packet(const Packet& packet, Seconds now) override;

  [[nodiscard]] std::uint64_t payload_received() const { return payload_; }
  [[nodiscard]] std::uint64_t dummy_received() const { return dummy_; }

  /// End-to-end delay of payload packets (entered GW1 → reached GW2).
  [[nodiscard]] const std::vector<Seconds>& payload_delays() const {
    return delays_;
  }

 private:
  std::uint64_t payload_ = 0;
  std::uint64_t dummy_ = 0;
  std::vector<Seconds> delays_;
};

}  // namespace linkpad::sim
