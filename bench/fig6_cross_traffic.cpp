// Fig 6: CIT padding with cross traffic through the shared router output
// link — empirical detection rate (n = 1000) vs link utilization.
//
// Paper shape: variance & entropy detection decrease with utilization
// (cross traffic inflates sigma_net, pushing r toward 1); entropy stays
// above variance (outlier robustness); mean stays near 50%; even at 40%
// utilization entropy remains ~70% — CIT is still unsafe.
#include "common.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "fig6_cross_traffic",
      "Fig 6: CIT detection rate vs shared-link utilization (n = 1000)");
  if (!args.parse(argc, argv)) return 1;

  const auto fig =
      core::fig6_detection_vs_utilization(bench::figure_options(args));
  bench::print_figure(fig, args);
  return 0;
}
