// Ablation: how sensitive is the adversary to his density-estimation
// choices? The paper fixes Gaussian KDE with (implicitly) a rule-of-thumb
// bandwidth; here we sweep Silverman vs Scott vs fixed bandwidths and the
// Gaussian/histogram density models at the paper's operating point
// (CIT, zero cross, n = 1000, variance feature).
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"

using namespace linkpad;

namespace {

double attack(classify::DensityKind density, stats::BandwidthRule rule,
              double fixed_bw, double effort, std::uint64_t seed) {
  core::ExperimentSpec spec;
  spec.scenario = core::lab_zero_cross(core::make_cit());
  spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.plan.adversary.window_size = 1000;
  spec.plan.adversary.density = density;
  spec.plan.adversary.bandwidth = rule;
  spec.plan.adversary.fixed_bandwidth = fixed_bw;
  spec.plan.train_windows =
      std::max<std::size_t>(12, static_cast<std::size_t>(200 * effort));
  spec.plan.test_windows = spec.plan.train_windows;
  spec.seed = seed;
  return core::run_experiment(spec).detection_rate;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_kde_bandwidth",
      "Ablation: adversary density model / bandwidth rule sensitivity");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  util::TextTable table({"density model", "detection rate"});
  struct Case {
    std::string name;
    classify::DensityKind density;
    stats::BandwidthRule rule;
    double fixed_bw;
  };
  // Fixed bandwidths are in feature units (variance of seconds^2): the
  // variance feature lives at the 1e-10 s^2 scale, so "too narrow" and
  // "too wide" are relative to that.
  const std::vector<Case> cases = {
      {"KDE + Silverman (paper)", classify::DensityKind::kKde,
       stats::BandwidthRule::kSilverman, 0.0},
      {"KDE + Scott", classify::DensityKind::kKde,
       stats::BandwidthRule::kScott, 0.0},
      {"KDE + fixed (too narrow)", classify::DensityKind::kKde,
       stats::BandwidthRule::kFixed, 1e-13},
      {"KDE + fixed (too wide)", classify::DensityKind::kKde,
       stats::BandwidthRule::kFixed, 1e-9},
      {"parametric Gaussian", classify::DensityKind::kGaussian,
       stats::BandwidthRule::kSilverman, 0.0},
      {"raw histogram (32 bins)", classify::DensityKind::kHistogram,
       stats::BandwidthRule::kSilverman, 0.0},
  };

  std::uint64_t salt = 0;
  for (const auto& c : cases) {
    const double v = attack(c.density, c.rule, c.fixed_bw, opts.effort,
                            core::derive_point_seed(opts.seed, salt++));
    table.add_row({c.name, util::fmt(v, 4)});
  }

  if (args.flag("--csv")) {
    table.write_csv(std::cout);
  } else {
    std::cout << "== Ablation: density model sensitivity (CIT, n = 1000, "
                 "variance feature) ==\n\n"
              << table.to_string()
              << "\nExpectation: the attack is forgiving — Silverman/Scott/"
                 "Gaussian all land near\nthe same rate (the class-"
                 "conditional feature laws are near-normal); only\npatholog"
                 "ically narrow fixed bandwidths or coarse histograms cost "
                 "accuracy.\n";
  }
  return 0;
}
