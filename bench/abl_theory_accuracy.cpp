// Ablation: how accurate are the paper's closed forms? Theorems 2/3 are
// Chebyshev-style approximations; this repo also implements the tighter
// CLT sampling-law rates (analysis/theory.hpp). This bench races both
// against the measured adversary across the (r, n) plane — the result
// motivates why the DESIGN GUIDELINE uses the CLT forms (a designer who
// trusts Theorem 2 near r ~ 1 underestimates the adversary badly).
#include <iostream>

#include "analysis/theory.hpp"
#include "common.hpp"
#include "core/experiment.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_theory_accuracy",
      "Ablation: Theorem 2 vs CLT sampling law vs measured adversary");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  const std::size_t windows = std::max<std::size_t>(
      12, static_cast<std::size_t>(150 * opts.effort));

  util::TextTable table(
      {"sigma_T (us)", "n", "r_hat", "measured", "Theorem 2", "CLT law"});

  std::uint64_t salt = 0;
  for (double sigma_us : {0.0, 8.0, 15.0}) {
    for (std::size_t n : {400u, 1000u}) {
      core::ExperimentSpec spec;
      spec.scenario = core::lab_zero_cross(
          sigma_us > 0.0 ? core::make_vit(sigma_us * 1e-6) : core::make_cit());
      spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
      spec.plan.adversary.window_size = n;
      spec.plan.train_windows = windows;
      spec.plan.test_windows = windows;
      spec.seed = core::derive_point_seed(opts.seed, salt++);
      const auto result = core::run_experiment(spec);

      table.add_row({util::fmt(sigma_us, 1), std::to_string(n),
                     util::fmt(result.r_hat, 4),
                     util::fmt(result.detection_rate, 4),
                     util::fmt(analysis::detection_rate_variance(
                                   result.r_hat, static_cast<double>(n)),
                               4),
                     util::fmt(analysis::detection_rate_variance_clt(
                                   result.r_hat, static_cast<double>(n)),
                               4)});
    }
  }

  if (args.flag("--csv")) {
    table.write_csv(std::cout);
  } else {
    std::cout << "== Ablation: accuracy of the closed forms (variance "
                 "feature) ==\n\n"
              << table.to_string()
              << "\nReading: at r well above 1 both forms work; as sigma_T "
                 "pushes r toward 1\nTheorem 2 collapses to its 0.5 clamp "
                 "while the adversary still detects —\nthe CLT law keeps "
                 "tracking him. Design against the CLT column.\n";
  }
  return 0;
}
