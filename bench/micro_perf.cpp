// Micro benchmarks: throughput of the hot paths that bound experiment
// wall-clock — the DES event core (old std::function/priority_queue design
// vs the pooled InlineCallback + TimerTask core, on the CIT testbed's event
// pattern), PIAT generation through the full testbed, feature extraction
// (batch extractors vs streaming window accumulators vs the five-feature
// DetectorBank inner loop), the streaming change-point update loop
// (two-sided CUSUM / adaptive-EWMA per-PIAT cost), KDE evaluation, the
// M/G/1 stationary-wait
// sampler, normal sampling (polar vs Ziggurat) and the prefix-replay
// curve pipeline (Fig 4(b)'s detection-vs-n workload, one engine run per
// point vs one collapsed run — outcomes asserted bit-identical), plus the
// population axis: thread scaling, process sharding, and the sampled
// execution mode (m-of-M strata with contention pinned at the full M,
// sampled flows asserted bitwise equal to their exhaustive twins), and the
// best-response tuner (candidate evaluations/sec through tune_adversary's
// selection stage, the robust frontier's inner loop).
//
// Emits machine-readable JSON with --json (one object per benchmark plus
// derived headline fields: events/sec speedup, features/sec and curve
// points/sec) so future PRs can track the perf trajectory; the default
// output is a human-readable table. --smoke shrinks every workload for CI.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include <thread>

#include "classify/feature.hpp"
#include "classify/window_accumulator.hpp"
#include "core/experiment.hpp"
#include "core/frontier.hpp"
#include "core/population.hpp"
#include "core/robust_frontier.hpp"
#include "core/scenarios.hpp"
#include "core/shard_io.hpp"
#include "sim/mg1.hpp"
#include "sim/scheduler.hpp"
#include "sim/testbed.hpp"
#include "stats/distributions.hpp"
#include "stats/kde.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace linkpad;

namespace {

// ---------------------------------------------------------------- harness

struct BenchResult {
  std::string name;
  std::string unit;        ///< what "items" counts (events, piats, samples)
  double items_per_sec = 0.0;
  double items = 0.0;
  double wall_s = 0.0;
};

/// Run `body` (returns items processed) repeatedly until `min_time` seconds
/// accumulate; one untimed warmup run first.
template <typename Fn>
BenchResult run_bench(const std::string& name, const std::string& unit,
                      double min_time, Fn&& body) {
  (void)body();  // warmup
  double items = 0.0;
  util::Stopwatch watch;
  do {
    items += static_cast<double>(body());
  } while (watch.elapsed_seconds() < min_time);
  BenchResult result;
  result.name = name;
  result.unit = unit;
  result.wall_s = watch.elapsed_seconds();
  result.items = items;
  result.items_per_sec = items / result.wall_s;
  return result;
}

// ------------------------------------------- legacy event core (pre-slab)

/// The event core this repository shipped with: a priority_queue of
/// {time, seq, std::function} entries. Kept here verbatim as the baseline
/// the refactored sim::Simulation is measured against.
class LegacySimulation {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] Seconds now() const { return now_; }

  void schedule_at(Seconds t, Callback cb) {
    queue_.push(Entry{t, next_seq_++, std::move(cb)});
  }
  void schedule_in(Seconds dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  void run_until(Seconds t_end) {
    while (!queue_.empty() && queue_.top().t <= t_end) {
      Entry entry{queue_.top().t, queue_.top().seq,
                  std::move(const_cast<Entry&>(queue_.top()).cb)};
      queue_.pop();
      now_ = entry.t;
      entry.cb();
      ++processed_;
    }
    if (queue_.empty()) return;
    now_ = t_end;
  }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    Seconds t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Seconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

// -------------------------------------- CIT testbed workload (event core)

/// Emission closures in the real gateway capture {this, Packet, emit time}
/// (~56 bytes) — past std::function's inline buffer, inside InlineCallback's.
struct WirePacket {
  std::uint64_t id = 0;
  double created = 0.0;
  double emitted = 0.0;
  int size_bytes = 1000;
  int kind = 1;
};

constexpr Seconds kTau = 10e-3;         // CIT designed interval
constexpr Seconds kEmitDelay = 25e-6;   // gateway jitter stand-in
constexpr Seconds kCbrPeriod = 25e-3;   // 40 pps payload

/// The CIT zero-cross testbed's event mix on the LEGACY core: every timer
/// fire and payload arrival is a fresh closure through the priority queue.
std::uint64_t legacy_cit_events(std::size_t fires) {
  LegacySimulation sim;
  std::uint64_t emitted = 0;

  struct Gateway {
    LegacySimulation& sim;
    std::uint64_t& emitted;
    Seconds next_fire = kTau;
    std::uint64_t seq = 0;
    std::uint64_t pending = 0;  // payload arrivals since last fire

    void fire() {
      WirePacket wire;
      wire.id = seq++;
      wire.kind = pending > 0 ? 1 : 0;
      pending = 0;
      wire.created = sim.now();
      const Seconds emit_time = sim.now() + kEmitDelay;
      sim.schedule_at(emit_time, [this, wire, emit_time]() mutable {
        wire.emitted = emit_time;
        emitted += static_cast<std::uint64_t>(wire.kind != 0) + 1;
      });
      next_fire += kTau;
      sim.schedule_at(next_fire, [this] { fire(); });
    }
  } gateway{sim, emitted};

  struct Source {
    LegacySimulation& sim;
    Gateway& gateway;
    void emit() {
      ++gateway.pending;
      sim.schedule_in(kCbrPeriod, [this] { emit(); });
    }
  } source{sim, gateway};

  sim.schedule_at(kTau, [&gateway] { gateway.fire(); });
  sim.schedule_in(kCbrPeriod / 2, [&source] { source.emit(); });
  sim.run_until(static_cast<Seconds>(fires) * kTau);
  return sim.events_processed();
}

/// Same workload on the refactored core: gateway timer and CBR source ride
/// the TimerTask fast path, the emission closure lives in the slab pool.
std::uint64_t pooled_cit_events(std::size_t fires) {
  sim::Simulation sim;
  std::uint64_t emitted = 0;

  struct Gateway final : sim::TimerTask {
    sim::Simulation& sim;
    std::uint64_t& emitted;
    Seconds next_fire = kTau;
    std::uint64_t seq = 0;
    std::uint64_t pending = 0;

    Gateway(sim::Simulation& s, std::uint64_t& e) : sim(s), emitted(e) {}

    void on_timer(Seconds now) override {
      WirePacket wire;
      wire.id = seq++;
      wire.kind = pending > 0 ? 1 : 0;
      pending = 0;
      wire.created = now;
      const Seconds emit_time = now + kEmitDelay;
      sim.schedule_at(emit_time, [this, wire, emit_time]() mutable {
        wire.emitted = emit_time;
        emitted += static_cast<std::uint64_t>(wire.kind != 0) + 1;
      });
      next_fire += kTau;
      sim.schedule_timer_at(next_fire, *this);
    }
  } gateway{sim, emitted};

  struct Source final : sim::TimerTask {
    sim::Simulation& sim;
    Gateway& gateway;
    Source(sim::Simulation& s, Gateway& g) : sim(s), gateway(g) {}
    void on_timer(Seconds /*now*/) override {
      ++gateway.pending;
      sim.schedule_timer_in(kCbrPeriod, *this);
    }
  } source{sim, gateway};

  sim.schedule_timer_at(kTau, gateway);
  sim.schedule_timer_in(kCbrPeriod / 2, source);
  sim.run_until(static_cast<Seconds>(fires) * kTau);
  return sim.events_processed();
}

/// Self-rescheduling 10k-event chain (the classic DES ping benchmark).
std::uint64_t legacy_chain(std::size_t events) {
  LegacySimulation sim;
  std::size_t fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < events) sim.schedule_in(1e-3, tick);
  };
  sim.schedule_in(1e-3, tick);
  sim.run_until(1e18);
  return sim.events_processed();
}

std::uint64_t pooled_chain(std::size_t events) {
  sim::Simulation sim;
  std::size_t fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < events) sim.schedule_in(1e-3, tick);
  };
  sim.schedule_in(1e-3, tick);
  sim.run();
  return sim.events_processed();
}

// ------------------------------------------------------------- reporting

/// Derived headline numbers tracked across PRs.
struct DerivedMetrics {
  double event_core_speedup_cit = 0.0;
  /// PIATs/sec through all five features at once (DetectorBank inner loop).
  double bank_five_feature_piats_per_sec = 0.0;
  /// Whole-window add_span fan-out vs per-sample add, five-feature bank.
  double bank_span_speedup = 0.0;
  /// Two-sided CUSUM detector updates/sec (per-PIAT sequential cost of the
  /// streaming change-point attack, classify/cpd.hpp).
  double cpd_updates_per_sec = 0.0;
  /// Streaming accumulator vs batch extractor, variance feature.
  double streaming_vs_batch_variance = 0.0;
  /// Fig 4(b) curve points/sec through the prefix-replay engine.
  double curve_points_per_sec = 0.0;
  /// Prefix-replay (1 sim) vs per-point engine runs (k sims), same curve.
  double curve_speedup_fig4b = 0.0;
  /// Ziggurat vs Marsaglia-polar standard-normal throughput.
  double ziggurat_normal_speedup = 0.0;
  /// Population throughput: flows/sec through PopulationEngine at M = 1000
  /// on the hardware thread count.
  double population_flows_per_sec = 0.0;
  /// Same workload, hardware threads vs a single thread.
  double population_thread_speedup = 0.0;
  /// Thread-scaling curve for the same workload: 2 and 4 threads vs 1.
  double population_thread_speedup_2 = 0.0;
  double population_thread_speedup_4 = 0.0;
  /// Defense-frontier throughput: policy points/sec through run_frontier
  /// on the 5-rung budget ladder (gateway queue-feedback seam + overhead
  /// accounting included).
  double frontier_points_per_sec = 0.0;
  /// Best-response tuner throughput: candidate evaluations/sec through
  /// tune_adversary on an 8-candidate feature × window grid (the robust
  /// frontier's selection stage; one full attack pipeline per candidate).
  double tuning_points_per_sec = 0.0;
  /// End-to-end sharded pipeline (8 shard runs + serialize + parse + merge)
  /// vs the plain in-process run, same M = 1000 workload: ~1.0 means
  /// process sharding costs nothing but the file round-trip.
  double population_shard_speedup = 0.0;
  /// Sampled execution mode (DESIGN.md §2.11): executed flows/sec of a
  /// m = 1000 stratum drawn from a deployed M = 100k population (contention
  /// pinned at the full M).
  double population_sampled_flows_per_sec = 0.0;
  /// Wall-clock ratio of the exhaustive M = 100k campaign (extrapolated
  /// from the measured exhaustive per-flow rate) over the measured sampled
  /// m = 1000 run — the headline "millions of flows in seconds" number.
  double population_sampling_speedup = 0.0;
};

void print_table(const std::vector<BenchResult>& results,
                 const DerivedMetrics& derived) {
  std::printf("%-36s %14s %12s %10s\n", "benchmark", "items/sec", "items",
              "wall (s)");
  for (const auto& r : results) {
    std::printf("%-36s %14.3e %12.0f %10.3f   [%s]\n", r.name.c_str(),
                r.items_per_sec, r.items, r.wall_s, r.unit.c_str());
  }
  std::printf("\nevent core speedup on CIT testbed workload: %.2fx\n",
              derived.event_core_speedup_cit);
  std::printf("five-feature streaming extraction: %.3e piats/sec "
              "(streaming/batch variance: %.2fx, span path: %.2fx)\n",
              derived.bank_five_feature_piats_per_sec,
              derived.streaming_vs_batch_variance, derived.bank_span_speedup);
  std::printf("change-point (CUSUM) detector updates: %.3e updates/sec\n",
              derived.cpd_updates_per_sec);
  std::printf("Fig 4(b) curve throughput: %.3e points/sec "
              "(prefix replay vs per-point sims: %.2fx)\n",
              derived.curve_points_per_sec, derived.curve_speedup_fig4b);
  std::printf("ziggurat normal sampling speedup: %.2fx\n",
              derived.ziggurat_normal_speedup);
  std::printf("population throughput at M = 1000: %.3e flows/sec "
              "(thread scaling vs 1: x2 %.2fx, x4 %.2fx, hw %.2fx)\n",
              derived.population_flows_per_sec,
              derived.population_thread_speedup_2,
              derived.population_thread_speedup_4,
              derived.population_thread_speedup);
  std::printf("defense-frontier throughput: %.3e policy points/sec\n",
              derived.frontier_points_per_sec);
  std::printf("best-response tuner throughput: %.3e candidate evals/sec\n",
              derived.tuning_points_per_sec);
  std::printf("sharded population pipeline vs in-process run: %.2fx\n",
              derived.population_shard_speedup);
  std::printf("sampled population (m = 1000 of M = 100k): %.3e flows/sec, "
              "%.1fx over exhaustive\n",
              derived.population_sampled_flows_per_sec,
              derived.population_sampling_speedup);
}

void print_json(const std::vector<BenchResult>& results,
                const DerivedMetrics& derived) {
  // hw_threads lets gate tooling condition floors on runner width (a thread
  // scaling target is meaningless on a 1-core CI box).
  const unsigned hw_threads =
      std::max(1u, std::thread::hardware_concurrency());
  std::printf("{\n  \"version\": 9,\n  \"hw_threads\": %u,\n"
              "  \"benchmarks\": [\n",
              hw_threads);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("    {\"name\": \"%s\", \"unit\": \"%s\", "
                "\"items_per_sec\": %.6e, \"items\": %.0f, \"wall_s\": %.6f}%s\n",
                r.name.c_str(), r.unit.c_str(), r.items_per_sec, r.items,
                r.wall_s, i + 1 < results.size() ? "," : "");
  }
  std::printf("  ],\n  \"derived\": {\n"
              "    \"event_core_speedup_cit\": %.4f,\n"
              "    \"bank_five_feature_piats_per_sec\": %.6e,\n"
              "    \"bank_span_speedup\": %.4f,\n"
              "    \"cpd_updates_per_sec\": %.6e,\n"
              "    \"streaming_vs_batch_variance\": %.4f,\n"
              "    \"curve_points_per_sec\": %.6e,\n"
              "    \"curve_speedup_fig4b\": %.4f,\n"
              "    \"ziggurat_normal_speedup\": %.4f,\n"
              "    \"population_flows_per_sec\": %.6e,\n"
              "    \"population_thread_speedup\": %.4f,\n"
              "    \"population_thread_speedup_2\": %.4f,\n"
              "    \"population_thread_speedup_4\": %.4f,\n"
              "    \"frontier_points_per_sec\": %.6e,\n"
              "    \"tuning_points_per_sec\": %.6e,\n"
              "    \"population_shard_speedup\": %.4f,\n"
              "    \"population_sampled_flows_per_sec\": %.6e,\n"
              "    \"population_sampling_speedup\": %.4f\n  }\n}\n",
              derived.event_core_speedup_cit,
              derived.bank_five_feature_piats_per_sec,
              derived.bank_span_speedup,
              derived.cpd_updates_per_sec,
              derived.streaming_vs_batch_variance,
              derived.curve_points_per_sec, derived.curve_speedup_fig4b,
              derived.ziggurat_normal_speedup,
              derived.population_flows_per_sec,
              derived.population_thread_speedup,
              derived.population_thread_speedup_2,
              derived.population_thread_speedup_4,
              derived.frontier_points_per_sec,
              derived.tuning_points_per_sec,
              derived.population_shard_speedup,
              derived.population_sampled_flows_per_sec,
              derived.population_sampling_speedup);
}

// ------------------------------------------- Fig 4(b) curve workload

/// The detection-vs-n curve of Fig 4(b): 10-point sample-size axis × the
/// three paper features, auto-selected entropy Δh, windows at n_max sized
/// for bench runtime. `collapsed` = the prefix-replay engine (1 sim for
/// the whole axis); otherwise one engine run per point — the pre-replay
/// pipeline, evaluating each prefix independently on the same capture keys.
const std::vector<std::size_t>& fig4b_axis() {
  static const std::vector<std::size_t> axis = {100,  200,  400,  500,  700,
                                                1000, 1500, 2000, 2500, 3000};
  return axis;
}

std::vector<double> run_fig4b_curve(std::size_t windows, bool collapsed) {
  const auto scenario = core::lab_zero_cross(core::make_cit());
  const std::vector<classify::FeatureKind> features = {
      classify::FeatureKind::kSampleMean,
      classify::FeatureKind::kSampleVariance,
      classify::FeatureKind::kSampleEntropy,
  };
  const auto& axis = fig4b_axis();
  const std::size_t n_max = axis.back();

  core::ExperimentSpec spec;
  spec.scenario = scenario;
  spec.plan.adversary.feature = features.front();
  spec.plan.extra_features.assign(features.begin() + 1, features.end());
  spec.plan.train_windows = windows;
  spec.plan.test_windows = windows;
  spec.seed = 20030324;

  std::vector<double> rates;
  rates.reserve(axis.size() * features.size());
  if (collapsed) {
    spec.sample_size_axis = axis;
    spec.plan.adversary.window_size = n_max;
    const auto result = core::ExperimentEngine().run(spec);
    for (const auto& point : result.by_sample_size) {
      for (const auto& outcome : point.per_feature) {
        rates.push_back(outcome.detection_rate);
      }
    }
  } else {
    for (const std::size_t n : axis) {
      core::ExperimentSpec single = spec;
      single.plan.adversary.window_size = n;
      single.plan.train_windows = windows * n_max / n;
      single.plan.test_windows = windows * n_max / n;
      const auto result = core::ExperimentEngine().run(single);
      for (const auto& outcome : result.per_feature) {
        rates.push_back(outcome.detection_rate);
      }
    }
  }
  return rates;
}

// ------------------------------------------- population scaling workload

/// Cheap per-flow experiment so the benchmark measures the POPULATION
/// machinery (sharding, per-flow engine pipelines, aggregation), not one
/// flow's classifier arithmetic.
core::PopulationSpec population_spec(std::size_t flows) {
  core::PopulationSpec spec;
  spec.experiment.scenario = core::lab_cross_traffic(core::make_cit(), 0.1);
  spec.experiment.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
  spec.experiment.plan.adversary.window_size = 40;
  spec.experiment.plan.train_windows = 2;
  spec.experiment.plan.test_windows = 2;
  spec.flows = flows;
  spec.seed = 20030324;
  return spec;
}

core::PopulationResult run_population(std::size_t flows, std::size_t threads) {
  core::SweepOptions options;
  options.threads = threads;
  return core::PopulationEngine(core::sim_backend(), options)
      .run(population_spec(flows));
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("micro_perf", "hot-path throughput micro benchmarks");
  args.add_flag("--json", "emit machine-readable JSON instead of a table");
  args.add_flag("--smoke", "CI mode: short measurements, small workloads");
  args.add_option("--min-time", "0.5", "seconds per benchmark measurement");
  if (!args.parse(argc, argv)) return 1;
  const bool smoke = args.flag("--smoke");
  const double min_time = smoke ? 0.05 : args.num("--min-time");

  std::vector<BenchResult> results;
  DerivedMetrics derived;

  // Event core, old vs new, on the CIT testbed's event pattern.
  results.push_back(run_bench("event_core/cit_workload/legacy", "events",
                              min_time, [] { return legacy_cit_events(50000); }));
  results.push_back(run_bench("event_core/cit_workload/pooled", "events",
                              min_time, [] { return pooled_cit_events(50000); }));
  derived.event_core_speedup_cit =
      results[1].items_per_sec / results[0].items_per_sec;

  results.push_back(run_bench("event_core/chain/legacy", "events", min_time,
                              [] { return legacy_chain(10000); }));
  results.push_back(run_bench("event_core/chain/pooled", "events", min_time,
                              [] { return pooled_chain(10000); }));

  // Full testbed PIAT generation (everything: events, RNG, M/G/1, jitter).
  {
    const auto scenario = core::lab_zero_cross(core::make_cit());
    util::RngFactory factory(3);
    std::uint64_t trial = 0;
    results.push_back(run_bench("testbed/cit_piats", "piats", min_time, [&] {
      auto rng = factory.make(trial++);
      sim::Testbed bed(scenario.config_for(1), rng);
      return bed.collect_piats(5000).size();
    }));
  }
  {
    const auto scenario = core::wan(core::make_cit(), 15.0);
    util::RngFactory factory(4);
    std::uint64_t trial = 0;
    results.push_back(run_bench("testbed/wan_piats", "piats", min_time, [&] {
      auto rng = factory.make(trial++);
      sim::Testbed bed(scenario.config_for(1), rng);
      return bed.collect_piats(5000).size();
    }));
  }

  // M/G/1 stationary-wait sampler.
  {
    sim::Mg1WaitSampler sampler(0.45, 12e-6, sim::ServiceModel::kDeterministic);
    util::Rng rng(5);
    results.push_back(run_bench("mg1/wait_sample", "samples", min_time, [&] {
      double acc = 0.0;
      for (int i = 0; i < 100000; ++i) acc += sampler.sample(rng);
      return static_cast<std::uint64_t>(100000 + (acc < 0.0 ? 1 : 0));
    }));
  }

  // Feature extraction + KDE on a window of designed-size PIATs.
  {
    util::Rng rng(6);
    stats::Normal dist(10e-3, 10e-6);
    std::vector<double> window(4000);
    for (auto& x : window) x = dist.sample(rng);

    classify::SampleVarianceFeature variance;
    results.push_back(run_bench("feature/variance_4k", "piats", min_time, [&] {
      double v = variance.extract(window);
      return static_cast<std::uint64_t>(window.size() + (v < 0.0 ? 1 : 0));
    }));
    const double batch_variance_ips = results.back().items_per_sec;

    classify::SampleEntropyFeature entropy(3e-6);
    results.push_back(run_bench("feature/entropy_4k", "piats", min_time, [&] {
      double v = entropy.extract(window);
      return static_cast<std::uint64_t>(window.size() + (v < 0.0 ? 1 : 0));
    }));

    const std::vector<double> kde_data(window.begin(), window.begin() + 1000);
    stats::GaussianKde kde(kde_data);
    results.push_back(run_bench("kde/pdf_1k", "evals", min_time, [&] {
      double acc = 0.0;
      for (int i = 0; i < 1000; ++i) {
        acc += kde.pdf(10e-3 + rng.uniform(-3e-5, 3e-5));
      }
      return static_cast<std::uint64_t>(1000 + (acc < 0.0 ? 1 : 0));
    }));

    // Streaming window accumulators vs the batch extractors above, plus the
    // DetectorBank inner loop: every PIAT fanned out to all five features
    // in one pass (what a 5-feature sweep point actually runs).
    classify::AccumulatorOptions acc_opts;
    acc_opts.entropy_bin_width = 3e-6;

    const auto bench_accumulator = [&](const std::string& name,
                                       classify::FeatureKind kind,
                                       classify::QuantileMode mode) {
      auto opts = acc_opts;
      opts.quantile_mode = mode;
      auto acc = classify::make_window_accumulator(kind, opts);
      results.push_back(run_bench(name, "piats", min_time, [&] {
        for (double x : window) acc->add(x);
        const double v = acc->value();
        acc->reset();
        return static_cast<std::uint64_t>(window.size() + (v < 0.0 ? 1 : 0));
      }));
    };
    bench_accumulator("feature_stream/variance_4k",
                      classify::FeatureKind::kSampleVariance,
                      classify::QuantileMode::kExact);
    derived.streaming_vs_batch_variance =
        results.back().items_per_sec / batch_variance_ips;
    bench_accumulator("feature_stream/entropy_4k",
                      classify::FeatureKind::kSampleEntropy,
                      classify::QuantileMode::kExact);
    bench_accumulator("feature_stream/iqr_sketch_4k",
                      classify::FeatureKind::kInterquartileRange,
                      classify::QuantileMode::kP2Sketch);

    {
      std::vector<std::unique_ptr<classify::WindowAccumulator>> bank;
      for (const auto kind : {classify::FeatureKind::kSampleMean,
                              classify::FeatureKind::kSampleVariance,
                              classify::FeatureKind::kSampleEntropy,
                              classify::FeatureKind::kMedianAbsDeviation,
                              classify::FeatureKind::kInterquartileRange}) {
        bank.push_back(classify::make_window_accumulator(kind, acc_opts));
      }
      results.push_back(
          run_bench("bank/five_feature_pass_4k", "piats", min_time, [&] {
            for (double x : window) {
              for (auto& acc : bank) acc->add(x);
            }
            double v = 0.0;
            for (auto& acc : bank) {
              v += acc->value();
              acc->reset();
            }
            return static_cast<std::uint64_t>(window.size() +
                                              (v < 0.0 ? 1 : 0));
          }));
      derived.bank_five_feature_piats_per_sec = results.back().items_per_sec;
      const double per_sample_ips = results.back().items_per_sec;

      // Same bank, whole window handed to each accumulator as one span —
      // the SoA batch path the chunked population dispatch feeds (one
      // virtual call per window per feature instead of one per PIAT).
      results.push_back(
          run_bench("bank/five_feature_span_4k", "piats", min_time, [&] {
            const std::span<const double> xs(window);
            for (auto& acc : bank) acc->add_span(xs);
            double v = 0.0;
            for (auto& acc : bank) {
              v += acc->value();
              acc->reset();
            }
            return static_cast<std::uint64_t>(window.size() +
                                              (v < 0.0 ? 1 : 0));
          }));
      derived.bank_span_speedup = results.back().items_per_sec / per_sample_ips;
    }
  }

  // Streaming change-point detectors: per-PIAT cost of one two-sided
  // update (both sides advanced + threshold bookkeeping) for the CUSUM
  // (Gaussian LLR) and adaptive-EWMA schemes of classify/cpd.hpp. The
  // CUSUM number is the headline cpd_updates_per_sec: it bounds how fast a
  // change-point adversary can ride the DetectorBank pass.
  {
    util::Rng rng(11);
    std::vector<std::vector<double>> pools(2);
    for (std::size_t c = 0; c < 2; ++c) {
      const double mean = c == 0 ? 0.10 : 0.11;
      pools[c].reserve(4096);
      for (int i = 0; i < 4096; ++i) {
        pools[c].push_back(mean +
                           0.01 * stats::sample_standard_normal(rng));
      }
    }
    const std::vector<double>& stream = pools[0];  // null-class replay
    for (const auto kind :
         {classify::CpdKind::kCusum, classify::CpdKind::kAdaptiveEwma}) {
      classify::CpdConfig config;
      config.kind = kind;
      const auto model = classify::CpdModel::train(config, pools);
      auto state = model.initial_state();
      const std::string name = std::string("cpd/") +
                               (kind == classify::CpdKind::kCusum
                                    ? "cusum_update_4k"
                                    : "ewma_update_4k");
      results.push_back(run_bench(name, "updates", min_time, [&] {
        for (const double x : stream) model.update(state, x);
        return static_cast<std::uint64_t>(stream.size());
      }));
      if (kind == classify::CpdKind::kCusum) {
        derived.cpd_updates_per_sec = results.back().items_per_sec;
      }
    }
  }

  // Standard-normal sampling: Marsaglia polar (the reference every figure
  // uses) vs the opt-in 256-layer Ziggurat.
  {
    util::Rng rng(7);
    constexpr int kDraws = 200000;
    results.push_back(run_bench("rng/normal_polar", "samples", min_time, [&] {
      double acc = 0.0;
      for (int i = 0; i < kDraws; ++i) acc += stats::sample_standard_normal(rng);
      return static_cast<std::uint64_t>(kDraws + (acc > 1e18 ? 1 : 0));
    }));
    const double polar_ips = results.back().items_per_sec;
    results.push_back(
        run_bench("rng/normal_ziggurat", "samples", min_time, [&] {
          double acc = 0.0;
          for (int i = 0; i < kDraws; ++i) {
            acc += stats::sample_standard_normal_ziggurat(rng);
          }
          return static_cast<std::uint64_t>(kDraws + (acc > 1e18 ? 1 : 0));
        }));
    derived.ziggurat_normal_speedup = results.back().items_per_sec / polar_ips;
    results.push_back(
        run_bench("rng/exponential_ziggurat", "samples", min_time, [&] {
          double acc = 0.0;
          for (int i = 0; i < kDraws; ++i) {
            acc += stats::sample_standard_exponential_ziggurat(rng);
          }
          return static_cast<std::uint64_t>(kDraws + (acc < 0.0 ? 1 : 0));
        }));
  }

  // Curve throughput: the Fig 4(b) detection-vs-n workload (10-point axis
  // × 3 paper features). Old pipeline: one engine run — one simulation —
  // per point. New: the whole axis rides one prefix-replay run. Outcomes
  // must agree bit for bit; the headline metric is points/sec.
  {
    // Same workload in smoke mode (only the measurement time shrinks) so
    // the BENCH record stays comparable across CI and local runs.
    const std::size_t windows = 6;
    const auto old_rates = run_fig4b_curve(windows, /*collapsed=*/false);
    const auto new_rates = run_fig4b_curve(windows, /*collapsed=*/true);
    if (old_rates != new_rates) {
      std::fprintf(stderr,
                   "FATAL: prefix-replay curve diverged from per-point "
                   "evaluation — bit-identity contract broken\n");
      return 1;
    }
    const double points = static_cast<double>(fig4b_axis().size());
    results.push_back(
        run_bench("curve/fig4b_per_point_sims", "points", min_time, [&] {
          (void)run_fig4b_curve(windows, /*collapsed=*/false);
          return static_cast<std::uint64_t>(points);
        }));
    const double old_pps = results.back().items_per_sec;
    results.push_back(
        run_bench("curve/fig4b_prefix_replay", "points", min_time, [&] {
          (void)run_fig4b_curve(windows, /*collapsed=*/true);
          return static_cast<std::uint64_t>(points);
        }));
    derived.curve_points_per_sec = results.back().items_per_sec;
    derived.curve_speedup_fig4b = derived.curve_points_per_sec / old_pps;
  }

  // Defense frontier: the 5-rung budget ladder through run_frontier — one
  // full attack pipeline per policy point, exercising the gateway's
  // queue-feedback seam (spend_dummy/observe per fire) plus the per-stream
  // overhead accounting. Headline: policy points/sec.
  {
    core::FrontierSpec fspec;
    fspec.scenario = core::lab_zero_cross(core::make_cit());
    fspec.policies = core::budget_ladder({0.0, 40.0, 70.0, 85.0, 100.0});
    fspec.plan.adversary.window_size = 100;
    fspec.plan.train_windows = 4;
    fspec.plan.test_windows = 4;
    fspec.seed = 20030324;
    const double points = static_cast<double>(fspec.policies.size());
    results.push_back(
        run_bench("frontier/budget_ladder5", "points", min_time, [&] {
          (void)core::run_frontier(fspec);
          return static_cast<std::uint64_t>(points);
        }));
    derived.frontier_points_per_sec = results.back().items_per_sec;
  }

  // Best-response tuner: tune_adversary over an 8-candidate feature ×
  // window grid on the full-padding CIT scenario — the robust frontier's
  // selection stage, one full attack pipeline per candidate, sharded via
  // SweepRunner. Headline: candidate evaluations/sec.
  {
    const core::Scenario scenario = core::lab_zero_cross(core::make_cit());
    core::AdversaryPlan plan;
    plan.train_windows = 4;
    plan.test_windows = 4;
    classify::DetectorSearchSpace space;
    space.features = {classify::FeatureKind::kSampleMean,
                      classify::FeatureKind::kSampleVariance,
                      classify::FeatureKind::kSampleEntropy,
                      classify::FeatureKind::kMedianAbsDeviation};
    space.window_sizes = {100, 200};
    const std::uint64_t evals = space.size();  // exhaustive: 8 ≤ limit
    results.push_back(
        run_bench("tuning/best_response8", "evals", min_time, [&] {
          (void)core::tune_adversary(scenario, plan, space, 20030324);
          return evals;
        }));
    derived.tuning_points_per_sec = results.back().items_per_sec;
  }

  // Population scaling (pop_scaling): M = 1000 concurrent padded flows,
  // one detection pipeline per tapped flow, sharded across the pool.
  // Headline: flows/sec at the hardware thread count plus the thread
  // scaling ratio — with a built-in thread-count bit-identity assert on a
  // small population first (the cheap mirror of the ctest population wall).
  {
    const std::size_t hw =
        std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    {
      const auto serial = run_population(64, 1);
      const auto wide = run_population(64, hw);
      const auto& sp = serial.by_sample_size[0];
      const auto& wp = wide.by_sample_size[0];
      bool identical = sp.mean_rate == wp.mean_rate &&
                       sp.min_rate == wp.min_rate &&
                       sp.max_rate == wp.max_rate &&
                       sp.worst_flow == wp.worst_flow &&
                       sp.quantiles.median == wp.quantiles.median &&
                       sp.quantiles.p95 == wp.quantiles.p95;
      for (std::size_t f = 0; identical && f < serial.flows(); ++f) {
        identical = serial.per_flow[f].detection_rate ==
                    wide.per_flow[f].detection_rate;
      }
      if (!identical) {
        std::fprintf(stderr,
                     "FATAL: population run diverged across thread counts "
                     "— bit-identity contract broken\n");
        return 1;
      }
    }

    const std::size_t flows = 1000;
    results.push_back(
        run_bench("population/flows1000_threads_1", "flows", min_time, [&] {
          (void)run_population(flows, 1);
          return flows;
        }));
    const double serial_fps = results.back().items_per_sec;
    // Thread-scaling curve at fixed counts 2 and 4 (a pool wider than the
    // machine just idles, so the ratios saturate at the core count), then
    // the hardware width. Fixed record names across machines (the hardware
    // count varies per runner; tools diff successive BENCH records by name).
    results.push_back(
        run_bench("population/flows1000_threads_2", "flows", min_time, [&] {
          (void)run_population(flows, 2);
          return flows;
        }));
    derived.population_thread_speedup_2 =
        results.back().items_per_sec / serial_fps;
    results.push_back(
        run_bench("population/flows1000_threads_4", "flows", min_time, [&] {
          (void)run_population(flows, 4);
          return flows;
        }));
    derived.population_thread_speedup_4 =
        results.back().items_per_sec / serial_fps;
    results.push_back(
        run_bench("population/flows1000_threads_hw", "flows", min_time, [&] {
          (void)run_population(flows, hw);
          return flows;
        }));
    derived.population_flows_per_sec = results.back().items_per_sec;
    derived.population_thread_speedup =
        derived.population_flows_per_sec / serial_fps;
  }

  // Sampled execution mode (DESIGN.md §2.11): a m = 1000 stratum of a
  // deployed M = 100k population, contention pinned at the full M. First
  // the in-bench wall: every sampled flow must be bitwise identical to the
  // same flow id of the exhaustive run (the pinned-contention contract the
  // whole mode rests on), checked at a small M where exhaustive is cheap.
  // Headline: population_sampling_speedup — the wall-clock of the
  // exhaustive M = 100k campaign (M flows at the measured exhaustive
  // per-flow rate; running it for real would take minutes per iteration)
  // over the measured sampled wall-clock.
  {
    const std::size_t hw =
        std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    {
      const auto exhaustive = run_population(64, hw);
      core::SweepOptions options;
      options.threads = hw;
      const auto sampled = core::PopulationEngine(core::sim_backend(), options)
                               .run(population_spec(64).sampled(16));
      bool identical = sampled.sampled_ids.size() == sampled.flows();
      for (std::size_t i = 0; identical && i < sampled.flows(); ++i) {
        const auto& sub = sampled.per_flow[i];
        const auto& full = exhaustive.per_flow[sampled.sampled_ids[i]];
        identical = sub.by_sample_size.size() == full.by_sample_size.size();
        for (std::size_t a = 0; identical && a < sub.by_sample_size.size();
             ++a) {
          for (std::size_t j = 0;
               identical && j < sub.by_sample_size[a].per_feature.size();
               ++j) {
            identical = sub.by_sample_size[a].per_feature[j].detection_rate ==
                        full.by_sample_size[a].per_feature[j].detection_rate;
          }
        }
      }
      if (!identical) {
        std::fprintf(stderr,
                     "FATAL: sampled flows diverged from the exhaustive run "
                     "at the same flow ids — bit-identity contract broken\n");
        return 1;
      }
    }

    const std::size_t deployed = 100000;
    const std::size_t stratum = 1000;
    core::SweepOptions options;
    options.threads = hw;
    const core::PopulationEngine engine(core::sim_backend(), options);
    results.push_back(
        run_bench("population/sampled_1000_of_100k", "flows", min_time, [&] {
          (void)engine.run(population_spec(deployed).sampled(stratum));
          return stratum;
        }));
    derived.population_sampled_flows_per_sec = results.back().items_per_sec;
    // Exhaustive M = 100k wall = M / exhaustive flows/sec; sampled wall =
    // m / sampled flows/sec. Same per-flow workload (contention is analytic
    // either way), so the ratio is ~M/m modulo estimator overhead.
    derived.population_sampling_speedup =
        (static_cast<double>(deployed) / derived.population_flows_per_sec) /
        (static_cast<double>(stratum) /
         derived.population_sampled_flows_per_sec);
  }

  // Process sharding (core/shard_io): the same M = 1000 workload split 8
  // ways. Measures the file-format cost alone (serialize + parse round
  // trip, N-shard merge + finalize) and the end-to-end sharded pipeline
  // relative to the plain in-process run — with a built-in assert that
  // merged shards reproduce the plain run byte for byte.
  {
    const std::size_t hw =
        std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    const auto shards_of = [&](std::size_t flows, std::size_t shard_n,
                               std::size_t threads) {
      const auto spec = population_spec(flows);
      std::vector<core::PopulationShard> shards;
      shards.reserve(shard_n);
      for (std::size_t i = 0; i < shard_n; ++i) {
        core::SweepOptions options;
        options.threads = threads;
        options.shard_index = i;
        options.shard_count = shard_n;
        shards.push_back(
            core::run_population_shard(spec, core::sim_backend(), options));
      }
      return shards;
    };

    {
      const auto merged = core::merge_shards(shards_of(64, 3, 1));
      const auto direct = run_population(64, hw);
      if (core::population_result_json(merged) !=
          core::population_result_json(direct)) {
        std::fprintf(stderr,
                     "FATAL: merged shards diverged from the in-process "
                     "population run — bit-identity contract broken\n");
        return 1;
      }
    }

    const std::size_t flows = 1000;
    const std::size_t shard_n = 8;
    const auto shards = shards_of(flows, shard_n, hw);

    results.push_back(
        run_bench("shard/roundtrip_1000x8", "flows", min_time, [&] {
          std::size_t round_tripped = 0;
          for (const auto& shard : shards) {
            const core::PopulationShard back =
                core::parse_shard(core::serialize_shard(shard));
            round_tripped += back.chunks.size() ? back.flows / shard_n : 0;
          }
          return round_tripped;
        }));

    results.push_back(run_bench("shard/merge_1000x8", "shards", min_time, [&] {
      auto copies = shards;
      const auto merged = core::merge_shards(std::move(copies));
      return shard_n + (merged.flow_count == 0 ? 1 : 0);
    }));

    results.push_back(
        run_bench("shard/pipeline_1000x8", "flows", min_time, [&] {
          auto fresh = shards_of(flows, shard_n, hw);
          std::vector<core::PopulationShard> parsed;
          parsed.reserve(fresh.size());
          for (const auto& shard : fresh) {
            parsed.push_back(core::parse_shard(core::serialize_shard(shard)));
          }
          const auto merged = core::merge_shards(std::move(parsed));
          return merged.flow_count;
        }));
    derived.population_shard_speedup =
        results.back().items_per_sec / derived.population_flows_per_sec;
  }

  if (args.flag("--json")) {
    print_json(results, derived);
  } else {
    print_table(results, derived);
  }
  return 0;
}
