// Micro benchmarks (google-benchmark): throughput of the hot paths that
// bound experiment wall-clock — the DES event loop, PIAT generation through
// the full testbed, feature extraction, KDE evaluation and the M/G/1
// stationary-wait sampler.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "classify/feature.hpp"
#include "core/scenarios.hpp"
#include "sim/mg1.hpp"
#include "sim/scheduler.hpp"
#include "sim/testbed.hpp"
#include "stats/kde.hpp"
#include "util/rng.hpp"

using namespace linkpad;

namespace {

void BM_RngUniform(benchmark::State& state) {
  util::Xoshiro256pp rng(1);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.uniform01();
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void BM_StandardNormal(benchmark::State& state) {
  util::Xoshiro256pp rng(2);
  double acc = 0.0;
  for (auto _ : state) {
    acc += stats::sample_standard_normal(rng);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StandardNormal);

void BM_SchedulerEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int fired = 0;
    // Self-rescheduling chain of 10k events.
    std::function<void()> tick = [&] {
      if (++fired < 10000) sim.schedule_in(1e-3, tick);
    };
    sim.schedule_in(1e-3, tick);
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerEventLoop);

void BM_TestbedPiatGeneration(benchmark::State& state) {
  const auto scenario = core::lab_zero_cross(core::make_cit());
  util::RngFactory factory(3);
  for (auto _ : state) {
    auto rng = factory.make(static_cast<std::uint64_t>(state.iterations()));
    sim::Testbed bed(scenario.config_for(1), rng);
    benchmark::DoNotOptimize(bed.collect_piats(5000));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_TestbedPiatGeneration);

void BM_TestbedPiatGenerationWanPath(benchmark::State& state) {
  const auto scenario = core::wan(core::make_cit(), 15.0);
  util::RngFactory factory(4);
  for (auto _ : state) {
    auto rng = factory.make(static_cast<std::uint64_t>(state.iterations()));
    sim::Testbed bed(scenario.config_for(1), rng);
    benchmark::DoNotOptimize(bed.collect_piats(5000));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_TestbedPiatGenerationWanPath);

void BM_Mg1WaitSample(benchmark::State& state) {
  sim::Mg1WaitSampler sampler(0.45, 12e-6, sim::ServiceModel::kDeterministic);
  util::Xoshiro256pp rng(5);
  double acc = 0.0;
  for (auto _ : state) {
    acc += sampler.sample(rng);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Mg1WaitSample);

std::vector<double> bench_window(std::size_t n) {
  util::Xoshiro256pp rng(6);
  stats::Normal dist(10e-3, 10e-6);
  std::vector<double> w(n);
  for (auto& x : w) x = dist.sample(rng);
  return w;
}

void BM_FeatureVariance(benchmark::State& state) {
  const auto window = bench_window(static_cast<std::size_t>(state.range(0)));
  classify::SampleVarianceFeature feature;
  for (auto _ : state) {
    benchmark::DoNotOptimize(feature.extract(window));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FeatureVariance)->Arg(1000)->Arg(4000);

void BM_FeatureEntropy(benchmark::State& state) {
  const auto window = bench_window(static_cast<std::size_t>(state.range(0)));
  classify::SampleEntropyFeature feature(3e-6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(feature.extract(window));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FeatureEntropy)->Arg(1000)->Arg(4000);

void BM_KdePdf(benchmark::State& state) {
  const auto data = bench_window(static_cast<std::size_t>(state.range(0)));
  stats::GaussianKde kde(data);
  util::Xoshiro256pp rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde.pdf(10e-3 + rng.uniform(-3e-5, 3e-5)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdePdf)->Arg(250)->Arg(1000);

}  // namespace
