// Ablation: entropy estimator bias correction and outlier robustness.
//
// The paper argues (Sec 4.4) that the histogram entropy estimator is robust
// against outliers while sample variance is not, and that this is why
// entropy out-detects variance behind congested routers (Fig 6 obs. 2).
// This bench quantifies that argument: detection rate of variance vs
// entropy (plain / Miller-Madow / Moddemeijer) and the robust MAD/IQR
// extensions on a congested path.
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_entropy_estimators",
      "Ablation: estimator robustness on a congested path (n = 1000)");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  const std::size_t windows = std::max<std::size_t>(
      12, static_cast<std::size_t>(200 * opts.effort));

  core::FigureSeries fig;
  fig.title = "Ablation: feature robustness vs cross-traffic utilization";
  fig.x_label = "utilization";
  fig.y_label = "detection rate";
  fig.x = {0.05, 0.25, 0.45};

  const std::vector<std::pair<std::string, classify::FeatureKind>> features = {
      {"sample variance", classify::FeatureKind::kSampleVariance},
      {"sample entropy", classify::FeatureKind::kSampleEntropy},
      {"MAD", classify::FeatureKind::kMedianAbsDeviation},
      {"IQR", classify::FeatureKind::kInterquartileRange},
  };
  for (const auto& [name, kind] : features) {
    fig.curves.push_back(core::Curve{name, {}});
  }

  for (std::size_t i = 0; i < fig.x.size(); ++i) {
    const auto scenario = core::lab_cross_traffic(core::make_cit(), fig.x[i]);
    std::vector<classify::FeatureKind> kinds;
    for (const auto& [name, kind] : features) kinds.push_back(kind);
    const auto rates = core::detection_rates_on_scenario(
        scenario, kinds, 1000, windows, windows, core::derive_point_seed(opts.seed, i));
    for (std::size_t f = 0; f < rates.size(); ++f) {
      fig.curves[f].y.push_back(rates[f]);
    }
  }
  bench::print_figure(fig, args);

  if (!args.flag("--csv")) {
    std::cout << "\nExpectation: variance degrades fastest with utilization "
                 "(outlier-sensitive);\nentropy and the robust dispersion "
                 "features (MAD/IQR) hold up better — the paper's\nFig 6 "
                 "observation (2), extended to two more robust statistics.\n";
  }
  return 0;
}
