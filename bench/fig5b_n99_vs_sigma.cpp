// Fig 5(b): theoretical sample size n(99%) an adversary needs for a 99%
// detection rate, as a function of the VIT timer spread sigma_T
// (Theorems 2/3 inverted at the calibrated gateway variances).
//
// Paper anchor: at sigma_T = 1 ms, n(99%) > 1e11 — "virtually impossible
// for an attacker to retrieve such a large sample".
//
// --empirical adds the MEASURED n(99%) companion: per sigma, the whole
// sample-size axis is evaluated over one simulated capture (prefix replay),
// so the measured curve costs one simulation per sigma instead of one per
// (sigma, n) pair.
#include "common.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "fig5b_n99_vs_sigma", "Fig 5(b): theoretical n(99%) vs sigma_T");
  args.add_flag("--empirical",
                "also measure n(99%) on the testbed (prefix-replay axis)");
  if (!args.parse(argc, argv)) return 1;

  const auto opts = bench::figure_options(args);
  const auto fig = core::fig5b_n99_vs_sigma(opts);
  bench::print_figure(fig, args, /*log_x=*/true, /*log_y=*/true);

  if (args.flag("--empirical")) {
    const auto measured = core::fig5b_n99_vs_sigma_empirical(opts);
    bench::print_figure(measured, args, /*log_x=*/true, /*log_y=*/true);
  }
  return 0;
}
