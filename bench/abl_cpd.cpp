// Extension: the STREAMING change-point adversary (CUSUM + adaptive-EWMA,
// classify/cpd.hpp). The fixed-sample attack of Fig 5(b) and the SPRT both
// wait for whole windows/batches; a change-point attacker scores every PIAT
// as it arrives and alarms the moment the stream drifts from the padded
// baseline. This bench measures time-to-detection (worst first-crossing
// over the two class streams) and realized false alarms across padding
// strengths, with both schemes' thresholds Monte-Carlo-calibrated to the
// same 5% within-horizon false-alarm target — so the sigma_T axis compares
// equally-calibrated attackers, not hand-picked thresholds.
#include <iostream>

#include "classify/detector_bank.hpp"
#include "common.hpp"
#include "core/experiment.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_cpd", "Extension: streaming change-point (CUSUM / adaptive-EWMA) "
                 "adversary vs padding strength");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  const std::size_t train_piats = std::max<std::size_t>(
      2000, static_cast<std::size_t>(20000 * opts.effort));
  const std::size_t test_piats = std::max<std::size_t>(
      2000, static_cast<std::size_t>(20000 * opts.effort));
  const std::size_t trials = std::max<std::size_t>(
      50, static_cast<std::size_t>(300 * opts.effort));

  util::TextTable table({"sigma_T (us)", "scheme", "threshold (5% FAR)",
                         "detected", "n @ detection", "false alarms"});

  const double sigmas[] = {0.0, 5.0, 10.0};
  for (std::size_t s = 0; s < 3; ++s) {
    const double sigma_us = sigmas[s];
    core::ExperimentSpec spec;
    spec.scenario = core::lab_zero_cross(
        sigma_us > 0.0 ? core::make_vit(sigma_us * 1e-6) : core::make_cit());
    spec.seed = core::derive_point_seed(opts.seed, s);

    const std::vector<std::vector<double>> train = {
        core::generate_class_stream(spec, 0, train_piats, 1),
        core::generate_class_stream(spec, 1, train_piats, 1)};
    const std::vector<std::vector<double>> test = {
        core::generate_class_stream(spec, 0, test_piats, 2),
        core::generate_class_stream(spec, 1, test_piats, 2)};

    for (const auto kind :
         {classify::CpdKind::kCusum, classify::CpdKind::kAdaptiveEwma}) {
      classify::CpdConfig config;
      config.kind = kind;
      config.target_far = 0.05;
      config.horizon = test_piats;
      config.trials = trials;
      config.calibration_seed = core::derive_point_seed(spec.seed, 3);
      const auto model = classify::CpdModel::train(config, train);

      std::vector<classify::CpdClassState> states(2, model.initial_state());
      for (std::size_t c = 0; c < 2; ++c) {
        for (const double x : test[c]) model.update(states[c], x);
      }
      const auto ttd = model.time_to_detection(states);
      table.add_row(
          {util::fmt(sigma_us, 1), classify::cpd_kind_name(kind),
           util::fmt(model.threshold(), 4), ttd.detected ? "yes" : "no",
           ttd.detected ? std::to_string(ttd.n_at_detection) : "-",
           std::to_string(ttd.false_alarms)});
    }
  }

  if (args.flag("--csv")) {
    table.write_csv(std::cout);
  } else {
    std::cout << "== Extension: streaming change-point adversary, "
                 "ARL0-calibrated ==\n\n"
              << table.to_string()
              << "\nReading: the CUSUM's per-PIAT log-likelihood ratio "
                 "exploits any density\ndifference the padding leaves, so it "
                 "crosses within a few hundred PIATs\nwherever the "
                 "fixed-sample attack eventually wins. The adaptive-EWMA "
                 "keys\non MEAN drift only: a rate-equalizing timer leaves "
                 "it blind (it honestly\nnever fires), showing what the "
                 "defense does and does not equalize.\n";
  }
  return 0;
}
