// Fig 4(a): PIAT probability density of the padded stream under CIT
// (zero cross traffic, tap at GW1) for 10 pps vs 40 pps payload.
//
// Paper shape: both densities bell-shaped around the 10 ms timer mean,
// identical means, the 40 pps curve visibly wider (r = sigma_h^2/sigma_l^2
// slightly above 1). Run with --csv for machine-readable rows.
#include <cstdio>
#include <iostream>

#include "common.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "fig4a_piat_pdf", "Fig 4(a): padded PIAT pdf at 10 vs 40 pps (CIT)");
  if (!args.parse(argc, argv)) return 1;

  const auto result = core::fig4a_piat_pdf(bench::figure_options(args));

  core::FigureSeries fig;
  fig.title = "Fig 4(a): PIAT pdf, CIT, zero cross traffic";
  fig.x_label = "PIAT (ms)";
  fig.y_label = "density";
  for (double x : result.grid) fig.x.push_back(units::to_ms(x));
  core::Curve low{"10 pps", result.pdf_low};
  core::Curve high{"40 pps", result.pdf_high};
  fig.curves = {low, high};

  if (!args.flag("--csv")) {
    std::printf("PIAT summary (10 pps): mean %.6f ms  std %.3f us  skew %+.3f\n",
                units::to_ms(result.summary_low.mean),
                units::to_us(result.summary_low.stddev),
                result.summary_low.skewness);
    std::printf("PIAT summary (40 pps): mean %.6f ms  std %.3f us  skew %+.3f\n",
                units::to_ms(result.summary_high.mean),
                units::to_us(result.summary_high.stddev),
                result.summary_high.skewness);
    std::printf("variance ratio r_hat = %.4f (paper: slightly above 1)\n\n",
                result.r_hat);
  }

  // Density plot wants its own autoscaled y axis.
  std::vector<std::string> header = {fig.x_label, "pdf 10pps", "pdf 40pps"};
  util::TextTable table(header);
  for (std::size_t i = 0; i < fig.x.size(); i += 8) {
    table.add_row({util::fmt(fig.x[i], 5), util::fmt_sci(result.pdf_low[i], 3),
                   util::fmt_sci(result.pdf_high[i], 3)});
  }
  if (args.flag("--csv")) {
    table.write_csv(std::cout);
    return 0;
  }
  std::cout << table.to_string() << '\n';

  if (!args.flag("--no-plot")) {
    util::PlotOptions plot;
    plot.x_label = "PIAT (ms)";
    plot.y_label = "density";
    std::cout << util::render_plot(
        {util::Series{"10 pps", fig.x, result.pdf_low},
         util::Series{"40 pps", fig.x, result.pdf_high}},
        plot);
  }
  return 0;
}
