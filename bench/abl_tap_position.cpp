// Ablation: observation-point sweep. The paper contrasts a tap "right at
// the output of the sender gateway" with one "maximally far" behind 15
// routers; this bench fills in the curve — detection rate vs the number of
// congested hops between GW1 and the adversary.
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_tap_position",
      "Ablation: detection rate vs tap distance from GW1 (n = 1000)");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  const std::size_t windows = std::max<std::size_t>(
      12, static_cast<std::size_t>(200 * opts.effort));

  core::FigureSeries fig;
  fig.title = "Ablation: tap position (hops of rho = 0.3 between GW1 and tap)";
  fig.x_label = "hops before tap";
  fig.y_label = "detection rate";
  core::Curve var{"sample variance", {}};
  core::Curve ent{"sample entropy", {}};

  for (std::size_t hops : {0u, 1u, 2u, 4u, 8u}) {
    auto scenario = core::lab_zero_cross(core::make_cit());
    for (std::size_t h = 0; h < hops; ++h) {
      sim::HopConfig hop;
      hop.name = "hop-" + std::to_string(h);
      hop.bandwidth_bps = 1e9;
      hop.cross_utilization = 0.3;
      hop.cross_packet_bytes = 1500;
      scenario.base.hops_before_tap.push_back(hop);
    }
    const auto rates = core::detection_rates_on_scenario(
        scenario,
        {classify::FeatureKind::kSampleVariance,
         classify::FeatureKind::kSampleEntropy},
        1000, windows, windows, core::derive_point_seed(opts.seed, hops));
    fig.x.push_back(static_cast<double>(hops));
    var.y.push_back(rates[0]);
    ent.y.push_back(rates[1]);
  }
  fig.curves = {var, ent};
  bench::print_figure(fig, args);

  if (!args.flag("--csv")) {
    std::cout << "\nExpectation: every congested hop adds queueing noise "
                 "(sigma_net^2 grows\nlinearly in hops), so detection decays "
                 "toward 50% with distance — quantifying\nwhy the paper's "
                 "remote (WAN) adversary is weaker than the local one.\n";
  }
  return 0;
}
