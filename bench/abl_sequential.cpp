// Extension: the SEQUENTIAL adversary (Wald SPRT). The paper's Fig 5(b)
// security argument counts fixed-sample sizes; a sequential attacker stops
// as soon as the evidence crosses Wald's thresholds, spending far fewer
// packets on average for the same error rates. This bench measures the
// average sample cost of the SPRT at 1% errors across padding strengths
// and compares it with the fixed-sample n(99%) from Theorem 2.
#include <cmath>
#include <iostream>

#include "analysis/theory.hpp"
#include "classify/sequential.hpp"
#include "common.hpp"
#include "core/experiment.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_sequential", "Extension: SPRT adversary vs fixed-sample attack");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  const std::size_t batch = 100;
  const std::size_t train_windows = std::max<std::size_t>(
      30, static_cast<std::size_t>(250 * opts.effort));
  const int trials = std::max(10, static_cast<int>(30 * opts.effort));

  util::TextTable table({"sigma_T (us)", "r_hat", "SPRT mean PIATs",
                         "SPRT accuracy", "fixed-n(99%) (Thm 2)"});

  for (double sigma_us : {0.0, 5.0, 10.0}) {
    core::ExperimentSpec spec;
    spec.scenario = core::lab_zero_cross(
        sigma_us > 0.0 ? core::make_vit(sigma_us * 1e-6) : core::make_cit());
    spec.adversary.feature = classify::FeatureKind::kSampleVariance;
    spec.adversary.window_size = batch;
    spec.seed = opts.seed + static_cast<std::uint64_t>(sigma_us);

    std::vector<std::vector<double>> train = {
        core::generate_class_stream(spec, 0, train_windows * batch, 1),
        core::generate_class_stream(spec, 1, train_windows * batch, 1)};
    classify::Adversary adversary(spec.adversary);
    adversary.train(train);
    const double r_hat = analysis::estimate_variance_ratio(train[0], train[1]);

    classify::SequentialConfig scfg;
    scfg.batch_size = batch;
    classify::SequentialDetector detector(adversary, scfg);

    double total_piats = 0.0;
    int correct = 0, decided = 0;
    for (int t = 0; t < trials; ++t) {
      const std::size_t truth = static_cast<std::size_t>(t % 2);
      const auto stream =
          core::generate_class_stream(spec, truth, batch * 3000, 10 + t);
      const auto out = detector.decide(stream);
      total_piats += static_cast<double>(out.piats_used);
      if (out.decided) {
        ++decided;
        if (static_cast<std::size_t>(out.decision) == truth) ++correct;
      }
    }

    const double fixed_n = analysis::sample_size_for_detection(
        classify::FeatureKind::kSampleVariance, r_hat, 0.99);
    table.add_row(
        {util::fmt(sigma_us, 1), util::fmt(r_hat, 4),
         util::fmt(total_piats / trials, 0),
         decided > 0 ? util::fmt(double(correct) / decided, 3) : "n/a",
         std::isfinite(fixed_n) ? util::fmt_sci(fixed_n, 2) : "inf"});
  }

  if (args.flag("--csv")) {
    table.write_csv(std::cout);
  } else {
    std::cout << "== Extension: sequential (SPRT) adversary at 1% error "
                 "targets ==\n\n"
              << table.to_string()
              << "\nReading: the SPRT reaches 99%-grade decisions with a "
                 "fraction of the\nfixed-sample cost, and its cost grows the "
                 "same way as sigma_T rises —\nVIT still wins, but the "
                 "defender's 'sample budget' margin is thinner than\nthe "
                 "fixed-n analysis suggests.\n";
  }
  return 0;
}
