// Extension: the SEQUENTIAL adversary (Wald SPRT). The paper's Fig 5(b)
// security argument counts fixed-sample sizes; a sequential attacker stops
// as soon as the evidence crosses Wald's thresholds, spending far fewer
// packets on average for the same error rates. This bench measures the
// average sample cost of the SPRT at 1% errors across padding strengths
// and compares it with the fixed-sample attack two ways:
//  * analytically — n(99%) from Theorem 2, and
//  * empirically — a checkpointed DetectorBank evaluates the fixed-sample
//    detection rate at the SPRT's average budget AND at the full capture
//    from ONE test pass (DetectorBank::arm_checkpoints / evaluate_at), so
//    the comparison costs no extra simulation.
#include <cmath>
#include <iostream>

#include "analysis/theory.hpp"
#include "classify/detector_bank.hpp"
#include "classify/sequential.hpp"
#include "common.hpp"
#include "core/experiment.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_sequential", "Extension: SPRT adversary vs fixed-sample attack");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  const std::size_t batch = 100;
  const std::size_t train_windows = std::max<std::size_t>(
      30, static_cast<std::size_t>(250 * opts.effort));
  const std::size_t test_windows = std::max<std::size_t>(
      30, static_cast<std::size_t>(250 * opts.effort));
  const int trials = std::max(10, static_cast<int>(30 * opts.effort));

  util::TextTable table({"sigma_T (us)", "r_hat", "SPRT mean PIATs",
                         "SPRT accuracy", "fixed @ SPRT budget",
                         "fixed @ full capture", "fixed-n(99%) (Thm 2)"});

  const double sigmas[] = {0.0, 5.0, 10.0};
  for (std::size_t s = 0; s < 3; ++s) {
    const double sigma_us = sigmas[s];
    core::ExperimentSpec spec;
    spec.scenario = core::lab_zero_cross(
        sigma_us > 0.0 ? core::make_vit(sigma_us * 1e-6) : core::make_cit());
    spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
    spec.plan.adversary.window_size = batch;
    spec.seed = core::derive_point_seed(opts.seed, s);

    std::vector<std::vector<double>> train = {
        core::generate_class_stream(spec, 0, train_windows * batch, 1),
        core::generate_class_stream(spec, 1, train_windows * batch, 1)};
    classify::Adversary adversary(spec.plan.adversary);
    adversary.train(train);
    const double r_hat = analysis::estimate_variance_ratio(train[0], train[1]);

    // The fixed-sample counterpart rides the SAME training capture: a
    // one-detector bank (variance over `batch`-sized windows).
    classify::DetectorBank bank(spec.plan.adversary, {spec.plan.adversary.feature}, 2);
    for (std::size_t c = 0; c < 2; ++c) bank.consume_training(c, train[c]);
    bank.train();

    classify::SequentialConfig scfg;
    scfg.batch_size = batch;
    classify::SequentialDetector detector(adversary, scfg);

    double total_piats = 0.0;
    int correct = 0, decided = 0;
    for (int t = 0; t < trials; ++t) {
      const std::size_t truth = static_cast<std::size_t>(t % 2);
      const auto stream =
          core::generate_class_stream(spec, truth, batch * 3000, 10 + t);
      const auto out = detector.decide(stream);
      total_piats += static_cast<double>(out.piats_used);
      if (out.decided) {
        ++decided;
        if (static_cast<std::size_t>(out.decision) == truth) ++correct;
      }
    }
    const double sprt_budget = total_piats / trials;

    // One checkpointed test pass: detection after the SPRT's average
    // budget (rounded down to whole windows, floored at one window) and
    // after the full capture.
    const std::size_t capture = test_windows * batch;
    const std::size_t budget = std::min(
        capture,
        std::max(batch, static_cast<std::size_t>(sprt_budget) / batch * batch));
    bank.arm_checkpoints({budget, capture});
    for (std::size_t c = 0; c < 2; ++c) {
      const auto test = core::generate_class_stream(spec, c, capture, 2);
      bank.consume_test(c, test);
    }
    const double fixed_at_budget =
        bank.evaluate_at(budget).front().detection_rate();
    const double fixed_at_full =
        bank.evaluate_at(capture).front().detection_rate();

    const double fixed_n = analysis::sample_size_for_detection(
        classify::FeatureKind::kSampleVariance, r_hat, 0.99);
    table.add_row(
        {util::fmt(sigma_us, 1), util::fmt(r_hat, 4),
         util::fmt(sprt_budget, 0),
         decided > 0 ? util::fmt(double(correct) / decided, 3) : "n/a",
         util::fmt(fixed_at_budget, 3) + " (n=" + std::to_string(budget) + ")",
         util::fmt(fixed_at_full, 3),
         std::isfinite(fixed_n) ? util::fmt_sci(fixed_n, 2) : "inf"});
  }

  if (args.flag("--csv")) {
    table.write_csv(std::cout);
  } else {
    std::cout << "== Extension: sequential (SPRT) adversary at 1% error "
                 "targets ==\n\n"
              << table.to_string()
              << "\nReading: the SPRT reaches 99%-grade decisions with a "
                 "fraction of the\nfixed-sample cost — the checkpointed "
                 "fixed-sample attack, granted the SAME\naverage budget, "
                 "stays well below the SPRT's accuracy. Its cost grows the\n"
                 "same way as sigma_T rises: VIT still wins, but the "
                 "defender's 'sample\nbudget' margin is thinner than the "
                 "fixed-n analysis suggests.\n";
  }
  return 0;
}
