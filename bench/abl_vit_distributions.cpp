// Ablation: does the SHAPE of the VIT interval distribution matter, or only
// its variance sigma_T^2?
//
// Theorems 1-3 model everything as normal, so they predict shape doesn't
// matter. The measurement is sharper: for the VARIANCE feature the three
// distributions indeed coincide at matched sigma_T^2 — but for the ENTROPY
// feature, normal VIT protects clearly better than uniform or shifted-
// exponential VIT. The mechanism: the normal maximizes differential entropy
// at fixed variance, so convolving it with the (rate-dependent) gateway
// jitter changes its entropy the least; lower-entropy interval laws leave
// the entropy feature more headroom to move between payload rates. Pick
// NORMAL interval distributions when deploying VIT.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"
#include "sim/timer_policy.hpp"

using namespace linkpad;

namespace {

double attack(std::shared_ptr<const sim::TimerPolicy> policy,
              classify::FeatureKind feature, double effort,
              std::uint64_t seed) {
  core::ExperimentSpec spec;
  spec.scenario = core::lab_zero_cross(std::move(policy));
  spec.plan.adversary.feature = feature;
  spec.plan.adversary.window_size = 2000;
  spec.plan.train_windows = std::max<std::size_t>(
      10, static_cast<std::size_t>(120 * effort));
  spec.plan.test_windows = spec.plan.train_windows;
  spec.seed = seed;
  return core::run_experiment(spec).detection_rate;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_vit_distributions",
      "Ablation: VIT interval distribution shape at matched variance");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  using namespace units;
  const double tau = core::constants::kTau;
  const std::vector<Seconds> sigmas = {5.0_us, 20.0_us, 100.0_us};

  util::TextTable table({"sigma_T (us)", "feature", "VIT-normal",
                         "VIT-uniform", "VIT-shifted-exp"});

  std::uint64_t salt = 0;
  for (const Seconds s : sigmas) {
    for (const auto feature : {classify::FeatureKind::kSampleVariance,
                               classify::FeatureKind::kSampleEntropy}) {
      const double v_norm =
          attack(std::make_shared<sim::NormalIntervalTimer>(tau, s), feature,
                 opts.effort, core::derive_point_seed(opts.seed, salt++));
      const double v_unif = attack(
          std::make_shared<sim::UniformIntervalTimer>(tau, s * std::sqrt(3.0)),
          feature, opts.effort, core::derive_point_seed(opts.seed, salt++));
      const double v_sexp =
          attack(std::make_shared<sim::ShiftedExponentialTimer>(tau - s, s),
                 feature, opts.effort, core::derive_point_seed(opts.seed, salt++));
      table.add_row({util::fmt(units::to_us(s), 1),
                     classify::feature_name(feature), util::fmt(v_norm, 4),
                     util::fmt(v_unif, 4), util::fmt(v_sexp, 4)});
    }
  }

  if (args.flag("--csv")) {
    table.write_csv(std::cout);
  } else {
    std::cout << "== Ablation: VIT distribution shape at matched sigma_T^2 "
                 "(n = 2000) ==\n\n"
              << table.to_string()
              << "\nReading: the VARIANCE feature only sees sigma_T^2 — the "
                 "three columns agree.\nThe ENTROPY feature punishes non-"
                 "normal interval laws (lower differential\nentropy at the "
                 "same variance leaves it more signal). Deploy VIT with "
                 "NORMAL\nintervals — which is exactly the law the paper's "
                 "analysis assumes.\n";
  }
  return 0;
}
