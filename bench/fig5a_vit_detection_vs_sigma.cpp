// Fig 5(a): VIT padding — empirical detection rate vs timer spread sigma_T
// at fixed sample size n = 2000 (variance & entropy features).
//
// Paper shape: detection drops quickly toward 50% as sigma_T grows; VIT
// beats CIT at identical bandwidth.
#include "common.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "fig5a_vit_detection_vs_sigma",
      "Fig 5(a): VIT detection rate vs sigma_T at n = 2000");
  if (!args.parse(argc, argv)) return 1;

  const auto fig = core::fig5a_detection_vs_sigma(bench::figure_options(args));
  bench::print_figure(fig, args, /*log_x=*/true);
  return 0;
}
