// Fig 4(b): detection rate vs sample size n under CIT padding with zero
// cross traffic — empirical (KDE-Bayes adversary on the simulated testbed)
// and theoretical (Theorems 1-3 at the measured r̂) curves for sample mean,
// sample variance and sample entropy.
//
// Paper shape: mean flat at ~50%; variance & entropy climb with n and are
// ~100% by n = 1000; experiment tracks theory.
#include "common.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "fig4b_cit_detection_vs_n",
      "Fig 4(b): CIT detection rate vs sample size (experiment + theory)");
  if (!args.parse(argc, argv)) return 1;

  const auto fig = core::fig4b_detection_vs_n(bench::figure_options(args));
  bench::print_figure(fig, args, /*log_x=*/true);
  return 0;
}
