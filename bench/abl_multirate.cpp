// Extension (paper Sec 6): more than two payload rate classes. "Our
// technique can be easily extended to multiple ones by performing more
// off-line training." This bench runs the m-ary adversary on m equally
// spaced rates in [10, 40] pps and prints the confusion matrix plus the
// detection rate as m grows.
#include <iostream>

#include "common.hpp"
#include "core/experiment.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_multirate", "Extension: m-ary payload rate classification");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  const std::size_t windows = std::max<std::size_t>(
      12, static_cast<std::size_t>(150 * opts.effort));

  util::TextTable table({"m classes", "chance", "detection rate", "per-class rates"});
  for (std::size_t m : {2u, 3u, 4u, 6u}) {
    core::ExperimentSpec spec;
    spec.scenario = core::lab_multirate(core::make_cit(), m);
    spec.plan.adversary.feature = classify::FeatureKind::kSampleVariance;
    spec.plan.adversary.window_size = 2000;
    spec.plan.train_windows = windows;
    spec.plan.test_windows = windows;
    spec.seed = core::derive_point_seed(opts.seed, m);
    const auto result = core::run_experiment(spec);

    std::string per_class;
    for (std::size_t c = 0; c < m; ++c) {
      if (c) per_class += " ";
      per_class += util::fmt(
          result.confusion.per_class_rate(static_cast<ClassLabel>(c)), 2);
    }
    table.add_row({std::to_string(m), util::fmt(1.0 / m, 3),
                   util::fmt(result.detection_rate, 4), per_class});
  }

  if (args.flag("--csv")) {
    table.write_csv(std::cout);
  } else {
    std::cout << "== Extension: multi-rate classification (CIT, n = 2000, "
                 "variance feature) ==\n\n"
              << table.to_string()
              << "\nExpectation: detection stays far above 1/m chance but "
                 "degrades as classes\npack closer in variance; edge classes "
                 "(10/40 pps) remain easiest.\n";
  }
  return 0;
}
