// Fig 8(a): detection rate (n = 1000) across a full day on the Texas A&M
// campus path (4 enterprise hops, light diurnal cross load), CIT padding.
//
// Paper shape: variance/entropy detection high essentially all day — a
// medium-size enterprise network does not disturb the padded stream enough;
// "we would not recommend CIT padding to be used in such an environment".
#include "common.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "fig8a_campus_diurnal",
      "Fig 8(a): campus-path detection rate vs time of day (n = 1000)");
  if (!args.parse(argc, argv)) return 1;

  const auto fig =
      core::fig8_detection_vs_hour(/*wan=*/false, bench::figure_options(args));
  bench::print_figure(fig, args);
  return 0;
}
