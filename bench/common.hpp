// Shared scaffolding for the figure-driver binaries: every driver prints
// (a) a provenance header, (b) the figure's series as an aligned table,
// (c) an ASCII rendering of the curve shapes, and (d) CSV rows on demand —
// the "same rows/series the paper reports".
#pragma once

#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/figures.hpp"
#include "core/live_backend.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace linkpad::bench {

/// Standard options shared by all figure drivers.
inline util::ArgParser make_figure_parser(const std::string& name,
                                          const std::string& summary) {
  util::ArgParser parser(name, summary);
  parser.add_option("--effort", "1.0",
                    "Monte-Carlo effort multiplier (0.1 = quick smoke run)");
  parser.add_option("--seed", "20030324", "root RNG seed");
  parser.add_option("--backend", "sim",
                    "PIAT backend: 'sim' (testbed) or 'live' (loopback UDP)");
  parser.add_option("--live-tau-scale", "0.1",
                    "with --backend live: scale factor on the policy tau");
  parser.add_flag("--csv", "emit CSV rows instead of the aligned table");
  parser.add_flag("--no-plot", "suppress the ASCII plot");
  return parser;
}

inline core::FigureOptions figure_options(const util::ArgParser& args) {
  core::FigureOptions opt;
  opt.effort = args.num("--effort");
  opt.seed = static_cast<std::uint64_t>(args.integer("--seed"));
  const std::string backend = args.str("--backend");
  if (backend == "live") {
    core::LiveBackendOptions live;
    live.tau_scale = args.num("--live-tau-scale");
    opt.backend = core::make_live_backend(live);
  } else if (backend != "sim") {
    throw std::invalid_argument("--backend must be 'sim' or 'live', got '" +
                                backend + "'");
  }
  return opt;
}

/// Print a FigureSeries per the parsed options.
inline void print_figure(const core::FigureSeries& fig,
                         const util::ArgParser& args, bool log_x = false,
                         bool log_y = false) {
  std::vector<std::string> header = {fig.x_label};
  for (const auto& c : fig.curves) header.push_back(c.name);
  util::TextTable table(header);
  for (std::size_t i = 0; i < fig.x.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(log_x ? util::fmt_sci(fig.x[i], 3) : util::fmt(fig.x[i], 4));
    for (const auto& c : fig.curves) {
      row.push_back(log_y ? util::fmt_sci(c.y[i], 3) : util::fmt(c.y[i], 4));
    }
    table.add_row(std::move(row));
  }

  if (args.flag("--csv")) {
    table.write_csv(std::cout);
    return;
  }

  std::cout << "== " << fig.title << " ==\n\n" << table.to_string() << '\n';

  if (!args.flag("--no-plot")) {
    std::vector<util::Series> series;
    for (const auto& c : fig.curves) {
      series.push_back(util::Series{c.name, fig.x, c.y});
    }
    util::PlotOptions plot;
    plot.log_x = log_x;
    plot.log_y = log_y;
    plot.x_label = fig.x_label;
    plot.y_label = fig.y_label;
    if (!log_y) {
      plot.y_fixed = true;
      plot.y_min = 0.3;
      plot.y_max = 1.0;
    }
    std::cout << util::render_plot(series, plot);
  }
}

}  // namespace linkpad::bench
