// Fig 8(b): detection rate (n = 1000) across a full day on the WAN path
// Ohio State -> Texas A&M (15 hops, one congested peering bottleneck with a
// strong diurnal load), CIT padding.
//
// Paper shape: lower than the campus curves overall; dips toward 50% in the
// busy afternoon; still >= ~65% during the quiet night (2:00) — CIT "may
// still not be sufficiently safe even if the adversary is very remote".
#include "common.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "fig8b_wan_diurnal",
      "Fig 8(b): WAN-path detection rate vs time of day (n = 1000)");
  if (!args.parse(argc, argv)) return 1;

  const auto fig =
      core::fig8_detection_vs_hour(/*wan=*/true, bench::figure_options(args));
  bench::print_figure(fig, args);
  return 0;
}
