// Extension: how much stronger is a full-distribution (EDF) adversary than
// the paper's scalar features? Classifies windows by nearest empirical CDF
// (KS / CvM distance to per-class references) and races it against the
// entropy feature across sample sizes on the zero-cross CIT lab system.
//
// Design consequence: the defender's margin must be budgeted against the
// strongest attack — if the EDF adversary beats entropy at equal n, the
// guideline's n_max is effectively larger than the packet count suggests.
#include <iostream>

#include "classify/edf_classifier.hpp"
#include "common.hpp"
#include "core/experiment.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_edf_adversary", "Extension: EDF (KS/CvM) adversary vs entropy feature");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  const std::size_t windows = std::max<std::size_t>(
      12, static_cast<std::size_t>(200 * opts.effort));

  core::FigureSeries fig;
  fig.title = "Extension: EDF adversary vs scalar features (CIT, zero cross)";
  fig.x_label = "sample size n";
  fig.y_label = "detection rate";
  fig.x = {100, 300, 1000};
  core::Curve entropy{"sample entropy", {}};
  core::Curve ks{"EDF nearest (KS)", {}};
  core::Curve cvm{"EDF nearest (CvM)", {}};

  const auto scenario = core::lab_zero_cross(core::make_cit());
  for (std::size_t i = 0; i < fig.x.size(); ++i) {
    const auto n = static_cast<std::size_t>(fig.x[i]);
    core::ExperimentSpec spec;
    spec.scenario = scenario;
    spec.adversary.window_size = n;
    spec.seed = opts.seed + i;
    spec.train_windows = windows;
    spec.test_windows = windows;

    std::vector<std::vector<double>> train = {
        core::generate_class_stream(spec, 0, windows * n, 1),
        core::generate_class_stream(spec, 1, windows * n, 1)};
    std::vector<std::vector<double>> test = {
        core::generate_class_stream(spec, 0, windows * n, 2),
        core::generate_class_stream(spec, 1, windows * n, 2)};

    classify::AdversaryConfig acfg;
    acfg.feature = classify::FeatureKind::kSampleEntropy;
    acfg.window_size = n;
    classify::Adversary adversary(acfg);
    adversary.train(train);
    entropy.y.push_back(adversary.detection_rate(test));

    const auto ks_clf = classify::EdfClassifier::train(
        train, classify::EdfDistance::kKolmogorovSmirnov);
    ks.y.push_back(ks_clf.evaluate(test, n).detection_rate());

    const auto cvm_clf = classify::EdfClassifier::train(
        train, classify::EdfDistance::kCramerVonMises);
    cvm.y.push_back(cvm_clf.evaluate(test, n).detection_rate());
  }
  fig.curves = {entropy, ks, cvm};
  bench::print_figure(fig, args, /*log_x=*/true);

  if (!args.flag("--csv")) {
    std::cout << "\nReading: the EDF adversary needs no feature engineering "
                 "and matches or beats\nthe entropy feature at small n — the "
                 "defender must budget n_max against the\nstrongest attack, "
                 "not just the paper's three statistics.\n";
  }
  return 0;
}
