// Extension: how much stronger is a full-distribution (EDF) adversary than
// the paper's scalar features? Classifies windows by nearest empirical CDF
// (KS / CvM distance to per-class references) and races it against the
// entropy feature across sample sizes on the zero-cross CIT lab system.
//
// All three detectors ride ONE DetectorBank pass per sample size: the
// entropy feature and both EDF distances see the same streamed capture, so
// the comparison costs one simulation instead of three.
//
// Design consequence: the defender's margin must be budgeted against the
// strongest attack — if the EDF adversary beats entropy at equal n, the
// guideline's n_max is effectively larger than the packet count suggests.
#include <iostream>

#include "classify/detector_bank.hpp"
#include "common.hpp"
#include "core/experiment.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_edf_adversary", "Extension: EDF (KS/CvM) adversary vs entropy feature");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  const std::size_t windows = std::max<std::size_t>(
      12, static_cast<std::size_t>(200 * opts.effort));

  core::FigureSeries fig;
  fig.title = "Extension: EDF adversary vs scalar features (CIT, zero cross)";
  fig.x_label = "sample size n";
  fig.y_label = "detection rate";
  fig.x = {100, 300, 1000};
  core::Curve entropy{"sample entropy", {}};
  core::Curve ks{"EDF nearest (KS)", {}};
  core::Curve cvm{"EDF nearest (CvM)", {}};

  const auto scenario = core::lab_zero_cross(core::make_cit());
  const auto& backend = opts.backend ? *opts.backend : core::sim_backend();
  constexpr std::size_t kBatch = 8192;

  for (std::size_t i = 0; i < fig.x.size(); ++i) {
    const auto n = static_cast<std::size_t>(fig.x[i]);
    const std::uint64_t seed = core::derive_point_seed(opts.seed, i);
    const std::size_t piats = windows * n;

    classify::DetectorSpec entropy_spec;
    entropy_spec.adversary.feature = classify::FeatureKind::kSampleEntropy;
    entropy_spec.adversary.window_size = n;
    classify::DetectorSpec ks_spec = entropy_spec;
    ks_spec.edf = classify::EdfDistance::kKolmogorovSmirnov;
    classify::DetectorSpec cvm_spec = entropy_spec;
    cvm_spec.edf = classify::EdfDistance::kCramerVonMises;

    classify::DetectorBank bank({entropy_spec, ks_spec, cvm_spec},
                                /*num_classes=*/2);
    if (bank.needs_prepass() && !backend.replayable()) {
      // Live captures cannot be replayed for the Δh prepass: materialize
      // the training capture once and run both passes in memory.
      std::vector<std::vector<double>> train(2);
      for (std::size_t c = 0; c < 2; ++c) {
        train[c] = core::pull_stream(backend, scenario, c, seed, /*salt=*/1,
                                     piats, kBatch);
        bank.consume_prepass(train[c]);
      }
      bank.finish_prepass();
      for (std::size_t c = 0; c < 2; ++c) bank.consume_training(c, train[c]);
    } else {
      if (bank.needs_prepass()) {
        for (std::size_t c = 0; c < 2; ++c) {
          core::stream_batches(backend, scenario, c, seed, /*salt=*/1, piats,
                               kBatch, [&](std::span<const double> batch) {
                                 bank.consume_prepass(batch);
                               });
        }
        bank.finish_prepass();
      }
      for (std::size_t c = 0; c < 2; ++c) {
        core::stream_batches(backend, scenario, c, seed, /*salt=*/1, piats,
                             kBatch, [&](std::span<const double> batch) {
                               bank.consume_training(c, batch);
                             });
      }
    }
    bank.train();
    for (std::size_t c = 0; c < 2; ++c) {
      core::stream_batches(backend, scenario, c, seed, /*salt=*/2, piats,
                           kBatch, [&](std::span<const double> batch) {
                             bank.consume_test(c, batch);
                           });
    }

    entropy.y.push_back(bank.detector(0).detection_rate());
    ks.y.push_back(bank.detector(1).detection_rate());
    cvm.y.push_back(bank.detector(2).detection_rate());
  }
  fig.curves = {entropy, ks, cvm};
  bench::print_figure(fig, args, /*log_x=*/true);

  if (!args.flag("--csv")) {
    std::cout << "\nReading: the EDF adversary needs no feature engineering "
                 "and matches or beats\nthe entropy feature at small n — the "
                 "defender must budget n_max against the\nstrongest attack, "
                 "not just the paper's three statistics.\n";
  }
  return 0;
}
