// Extension: the security / bandwidth / latency trade-off (the NetCamo
// coupling the paper cites). Sweeps the timer mean tau; each point is
// designed (sigma_T) for the same leak bound, and its bandwidth overhead
// and payload latency are reported — the frontier a deployment engineer
// actually chooses from.
#include <iostream>

#include "analysis/overhead.hpp"
#include "common.hpp"
#include "core/piat_model.hpp"
#include "core/scenarios.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_overhead", "Extension: security/QoS/overhead trade-off frontier");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);
  (void)opts;

  // Measure the gateway once (the design procedure's input).
  const auto cit = core::lab_zero_cross(core::make_cit());
  const auto vc = core::predict_components(cit.config_for(0), cit.config_for(1));

  analysis::DesignInputs in;
  in.sigma2_gw_low = vc.sigma2_gw_low;
  in.sigma2_gw_high = vc.sigma2_gw_high;
  in.n_max = 1e5;
  in.v_max = 0.55;
  in.payload_peak = core::constants::kRateHigh;

  const std::vector<Seconds> taus = {2.5e-3, 5e-3, 10e-3, 15e-3, 20e-3, 25e-3};
  const auto frontier =
      analysis::padding_tradeoff(in, taus, core::constants::kWireBytes);

  util::TextTable table({"tau (ms)", "wire (pps)", "overhead (kbit/s)",
                         "dummy frac", "mean delay (ms)", "sigma_T (us)",
                         "worst predicted v"});
  for (const auto& p : frontier) {
    const double worst_v =
        std::max({p.design.v_mean, p.design.v_variance, p.design.v_entropy});
    table.add_row({util::fmt(p.tau * 1e3, 1),
                   util::fmt(p.cost.wire_rate, 0),
                   util::fmt(p.cost.overhead_bps / 1e3, 1),
                   util::fmt(p.cost.dummy_fraction, 3),
                   util::fmt(p.cost.mean_payload_delay * 1e3, 2),
                   util::fmt(p.design.sigma_timer * 1e6, 2),
                   util::fmt(worst_v, 4)});
  }

  if (args.flag("--csv")) {
    table.write_csv(std::cout);
  } else {
    std::cout << "== Extension: padding trade-off frontier (leak bound v <= "
              << in.v_max << " at n <= " << in.n_max << ") ==\n\n"
              << table.to_string()
              << "\nReading: faster timers buy latency with bandwidth "
                 "(overhead ~ 1/tau at fixed\npacket size) while the "
                 "designed sigma_T keeps the leak at the same bound —\n"
                 "security is NOT what tau trades away; tau trades QoS "
                 "against dummy bandwidth,\nexactly the NetCamo coupling the "
                 "paper describes.\n";
  }
  return 0;
}
