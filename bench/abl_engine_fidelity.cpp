// Validation: analytic (Pollaczek–Khinchine hop channels) vs fully
// packet-level simulation. Runs the identical lab-with-cross-traffic
// experiment on both engines and compares PIAT moments, measured variance
// ratio and the entropy-adversary detection rate — plus the event-count
// ratio that justifies using the analytic engine for the day-long figures.
#include <cmath>
#include <iostream>
#include <string>
#include <type_traits>

#include "analysis/theory.hpp"
#include "classify/adversary.hpp"
#include "common.hpp"
#include "core/scenarios.hpp"
#include "sim/packet_path.hpp"
#include "stats/descriptive.hpp"
#include "util/rng.hpp"

using namespace linkpad;

namespace {

struct EngineRun {
  double piat_mean = 0.0;
  double piat_var = 0.0;
  double r_hat = 1.0;
  double detection = 0.5;
  std::uint64_t events = 0;
};

template <typename Bed>
EngineRun run_engine(const core::Scenario& scenario, std::size_t n,
                     std::size_t windows, std::uint64_t seed) {
  const util::RngFactory factory(seed);
  std::vector<std::vector<double>> train(2), test(2);
  std::uint64_t events = 0;
  for (std::size_t c = 0; c < 2; ++c) {
    auto rng_train = factory.make(1, c);
    Bed bed_train(scenario.config_for(c), rng_train);
    train[c] = bed_train.collect_piats(windows * n);
    auto rng_test = factory.make(2, c);
    Bed bed_test(scenario.config_for(c), rng_test);
    test[c] = bed_test.collect_piats(windows * n);
    if constexpr (std::is_same_v<Bed, sim::PacketLevelTestbed>) {
      events += bed_train.events_processed() + bed_test.events_processed();
    } else {
      events += bed_train.simulation().events_processed() +
                bed_test.simulation().events_processed();
    }
  }

  EngineRun run;
  run.events = events;
  run.piat_mean = stats::mean(train[0]);
  run.piat_var = stats::sample_variance(train[0]);
  run.r_hat = analysis::estimate_variance_ratio(train[0], train[1]);

  classify::AdversaryConfig cfg;
  cfg.feature = classify::FeatureKind::kSampleEntropy;
  cfg.window_size = n;
  classify::Adversary adversary(cfg);
  adversary.train(train);
  run.detection = adversary.detection_rate(test);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "abl_engine_fidelity",
      "Validation: analytic M/G/1 channels vs packet-level simulation");
  if (!args.parse(argc, argv)) return 1;
  const auto opts = bench::figure_options(args);

  const std::size_t n = 1000;
  const std::size_t windows = std::max<std::size_t>(
      10, static_cast<std::size_t>(60 * opts.effort));

  util::TextTable table({"engine", "rho", "PIAT mean (ms)", "PIAT std (us)",
                         "r_hat", "entropy detection", "DES events"});

  for (double rho : {0.15, 0.4}) {
    const auto scenario = core::lab_cross_traffic(core::make_cit(), rho);
    const auto analytic =
        run_engine<sim::Testbed>(scenario, n, windows, opts.seed);
    const auto packet =
        run_engine<sim::PacketLevelTestbed>(scenario, n, windows, opts.seed);
    auto emit = [&](const std::string& name, const EngineRun& run) {
      table.add_row({name, util::fmt(rho, 2),
                     util::fmt(run.piat_mean * 1e3, 5),
                     util::fmt(std::sqrt(run.piat_var) * 1e6, 2),
                     util::fmt(run.r_hat, 4), util::fmt(run.detection, 4),
                     std::to_string(run.events)});
    };
    emit("analytic", analytic);
    emit("packet-level", packet);
  }

  if (args.flag("--csv")) {
    table.write_csv(std::cout);
  } else {
    std::cout << "== Validation: engine fidelity (CIT + cross traffic, "
                 "n = 1000) ==\n\n"
              << table.to_string()
              << "\nReading: both engines agree on every statistic the "
                 "adversary can use,\nwhile the analytic engine processes "
                 "orders of magnitude fewer events —\nthat gap is what makes "
                 "the 24-hour WAN figures affordable.\n";
  }
  return 0;
}
