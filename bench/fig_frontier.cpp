// fig_frontier: the overhead/detectability frontier of the budgeted
// (token-bucket) defense — the curve the paper's two countermeasure points
// (CIT, VIT) are endpoints of. Sweeps the dummy-budget axis, measures each
// point's real padding bandwidth and the adversary's best detection rate in
// one simulation per point, and asserts the ladder's monotonicity contract
// (more budget must never help the adversary) before printing.
//
// Run: ./fig_frontier [--effort 1.0] [--seed 20030324] [--csv] [--no-plot]
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/frontier.hpp"
#include "core/scenarios.hpp"

using namespace linkpad;

int main(int argc, char** argv) {
  auto args = bench::make_figure_parser(
      "fig_frontier", "budgeted padding: overhead vs detection frontier");
  if (!args.parse(argc, argv)) return 1;
  const auto options = bench::figure_options(args);

  const std::vector<double> budgets = {0.0,  20.0, 40.0, 60.0,
                                       80.0, 90.0, 100.0};
  core::FrontierSpec spec;
  spec.scenario = core::lab_zero_cross(core::make_cit());
  spec.policies = core::budget_ladder(budgets);
  spec.plan.adversary.window_size = 400;
  spec.plan.train_windows = std::max<std::size_t>(
      4, static_cast<std::size_t>(40.0 * options.effort));
  spec.plan.test_windows = spec.plan.train_windows;
  spec.seed = options.seed;

  const core::ExperimentBackend& backend =
      options.backend ? *options.backend : core::sim_backend();
  util::Stopwatch watch;
  core::FrontierResult frontier;
  try {
    frontier = core::run_frontier(spec, backend);
  } catch (const std::invalid_argument& error) {
    // e.g. --backend live: a passive tap has no overhead coordinate.
    std::fprintf(stderr, "fig_frontier: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "fig_frontier: %zu policy points in %.2f s\n",
               frontier.points.size(), watch.elapsed_seconds());

  // Monotonicity is checked AFTER printing (a violation must be
  // diagnosable) with a tolerance of two test-window flips: each point's
  // rate is a Monte-Carlo estimate over 2 · test_windows windows, so
  // adjacent near-equal rungs legitimately differ by sampling noise.
  const double tolerance = 1.0 / static_cast<double>(spec.plan.test_windows);

  core::FigureSeries fig;
  fig.title = "budgeted padding: detection vs overhead (lab, n = 400)";
  fig.x_label = "dummy budget (pps)";
  fig.y_label = "rate";
  fig.x = budgets;
  core::Curve detection{"best-feature detection", {}};
  // Normalized against the TOTAL 1/τ wire ceiling (payload + dummies), so
  // full padding tops out at the dummy share (~0.75 here), not at 1.0.
  core::Curve overhead{"padding bw (frac of wire ceiling)", {}};
  const double full_padding_bps =
      core::padded_wire_rate_bps(spec.scenario);  // 1/τ ceiling
  for (const auto& point : frontier.points) {
    detection.y.push_back(point.detection_rate);
    overhead.y.push_back(point.overhead_bps / full_padding_bps);
  }
  fig.curves = {detection, overhead};
  bench::print_figure(fig, args);

  std::printf("\npolicy labels (TimerPolicy::name), overhead in kbps:\n");
  for (const auto& point : frontier.points) {
    std::printf("  %-44s %8.1f kbps  det %.4f %s\n", point.policy.c_str(),
                point.overhead_bps / 1e3, point.detection_rate,
                point.pareto_efficient ? "[pareto]" : "");
  }

  if (!core::detection_monotone_nonincreasing(frontier.points, tolerance)) {
    std::fprintf(stderr,
                 "FATAL: detection rate rose with padding budget beyond "
                 "sampling noise (tolerance %.4f) — the budget ladder's "
                 "monotonicity contract is broken\n",
                 tolerance);
    return 1;
  }
  return 0;
}
