#!/usr/bin/env python3
"""Perf-trajectory regression gate for micro_perf JSON records.

Compares a fresh `micro_perf --json --smoke` record against the committed
baseline (BENCH_pr8.json) and fails when any throughput metric dropped by
more than the threshold (default 25%). Metrics compared:

  * every `benchmarks[].items_per_sec`, keyed by benchmark name;
  * every `derived.*_per_sec` field.

Ratio-style derived fields (speedups) are reported for context but never
gate against the baseline: they compare two in-record measurements and stay
meaningful across machines, yet small workloads make them noisy.

Target floors (--floors floors.json) gate ANY metric — ratios included —
against an absolute minimum instead of the baseline. Each entry:

  {"metric": "derived.population_thread_speedup", "floor": 4.0,
   "min_hw_threads": 8}

`min_hw_threads` (optional) skips the floor when the CURRENT record's
`hw_threads` is below it — a thread-scaling target is unmeetable on a
1-core runner, so the floor only binds where the hardware can express it.
A floored metric missing from the current record always fails.

Metrics that are absent fail, and every absent name is ALSO collected into
one final stderr line ("perf_gate: MISSING metrics (3): a, b, c") so a
renamed benchmark section surfaces the full damage in one read instead of
one name per CI round-trip.

Caveat the budget is sized for: the committed baseline is a min-of-N
FLOOR recorded on one machine/compiler, while CI runs the gate on shared
runners with both gcc and clang — absolute throughput carries that
cross-machine variance. If the runner fleet shifts enough that healthy
builds breach the budget, recommit a fresh floor (and/or raise
--threshold in ci.yml via PERF_GATE_THRESHOLD); do not delete the gate.

Usage:
  perf_gate.py --baseline BENCH_pr8.json --current BENCH_<tag>.json \
               [--threshold 0.25] [--floors perf_floors.json] \
               [--report perf_gate_report.md]
  perf_gate.py --self-test   # gate the gate: synthetic-record unit checks

Exit status: 0 = within budget, 1 = regression (or missing metric),
2 = bad invocation / unreadable record.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_record(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.stderr.write(f"perf_gate: cannot read {path}: {error}\n")
        sys.exit(2)
    if "benchmarks" not in record or "derived" not in record:
        sys.stderr.write(f"perf_gate: {path} is not a micro_perf record\n")
        sys.exit(2)
    return record


def throughput_metrics(record: dict) -> dict[str, float]:
    """All baseline-gated metrics of a record: name -> items/sec."""
    metrics: dict[str, float] = {}
    for bench in record["benchmarks"]:
        metrics[bench["name"]] = float(bench["items_per_sec"])
    for key, value in record["derived"].items():
        if key.endswith("_per_sec"):
            metrics[f"derived.{key}"] = float(value)
    return metrics


def all_metrics(record: dict) -> dict[str, float]:
    """Every metric a floor may target — throughput AND ratio fields."""
    metrics = throughput_metrics(record)
    for key, value in record["derived"].items():
        metrics.setdefault(f"derived.{key}", float(value))
    return metrics


def load_floors(path: str) -> list[dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            floors = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.stderr.write(f"perf_gate: cannot read {path}: {error}\n")
        sys.exit(2)
    if not isinstance(floors, list):
        sys.stderr.write(f"perf_gate: {path} must be a JSON list\n")
        sys.exit(2)
    for entry in floors:
        if "metric" not in entry or "floor" not in entry:
            sys.stderr.write(
                f"perf_gate: floor entry {entry!r} needs 'metric' + 'floor'\n")
            sys.exit(2)
    return floors


def compare_to_baseline(baseline: dict[str, float], current: dict[str, float],
                        threshold: float) -> tuple[list, list, list]:
    """Baseline comparison: (rows, failures, missing metric names).

    Never stops at the first absent metric — the caller prints the whole
    missing list in one line, which is the entire point.
    """
    rows = []  # (name, base, cur, ratio, status)
    failures = []
    missing = []
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            rows.append((name, base, None, None, "MISSING"))
            failures.append(f"{name}: present in baseline, absent in current")
            missing.append(name)
            continue
        cur = current[name]
        if base <= 0.0:
            # A zero/negative baseline makes every ratio vacuous — any
            # current value would "pass". That is a broken recording (a
            # benchmark that measured nothing), not a license to skip the
            # metric silently: report it loudly so it gets re-recorded.
            rows.append((name, base, cur, None,
                         "SKIPPED (non-positive baseline)"))
            continue
        ratio = cur / base
        ok = ratio >= 1.0 - threshold
        rows.append((name, base, cur, ratio, "ok" if ok else "REGRESSED"))
        if not ok:
            failures.append(
                f"{name}: {base:.3e} -> {cur:.3e} "
                f"({100.0 * (1.0 - ratio):.1f}% drop, budget "
                f"{100.0 * threshold:.0f}%)")
    for name in sorted(set(current) - set(baseline)):
        rows.append((name, None, current[name], None, "new"))
    return rows, failures, missing


def check_floors(floors: list[dict], record: dict, failures: list[str],
                 missing: list[str]) -> list[tuple]:
    """Evaluate target floors against the CURRENT record.

    Returns report rows (name, floor, value, status); appends to failures
    and to the campaign-wide missing-metric list.
    """
    metrics = all_metrics(record)
    hw_threads = int(record.get("hw_threads", 1))
    rows = []
    for entry in floors:
        name = entry["metric"]
        floor = float(entry["floor"])
        min_hw = int(entry.get("min_hw_threads", 0))
        if hw_threads < min_hw:
            # Armed but unmeetable here: say so out loud, so a fleet of
            # small runners cannot silently retire a floor forever.
            print(f"perf_gate: floor {name} >= {floor:g} armed but SKIPPED "
                  f"(record has hw_threads={hw_threads}, floor needs "
                  f">= {min_hw})")
            rows.append((name, floor, metrics.get(name), "skipped"))
            continue
        value = metrics.get(name)
        if value is None:
            rows.append((name, floor, None, "MISSING"))
            failures.append(f"floor {name}: metric absent from current record")
            missing.append(name)
        elif value < floor:
            rows.append((name, floor, value, "BELOW FLOOR"))
            failures.append(
                f"floor {name}: {value:.3f} < target floor {floor:.3f}")
        else:
            rows.append((name, floor, value, "ok"))
    return rows


def missing_line(missing: list[str]) -> str:
    """The one loud line that names EVERY absent metric at once."""
    return (f"perf_gate: MISSING metrics ({len(missing)}): "
            f"{', '.join(missing)}")


def self_test() -> int:
    """Gate the gate: run the comparison logic on synthetic records.

    CI invokes this so a refactor of perf_gate.py cannot silently turn the
    gate vacuous. Pure in-memory — no files, no benchmarks.
    """
    failures: list[str] = []

    def expect(condition: bool, label: str) -> None:
        if not condition:
            failures.append(label)

    base = {"a/x": 100.0, "a/y": 200.0, "derived.z_per_sec": 50.0}

    # Healthy record within budget passes with no failures.
    rows, fail, miss = compare_to_baseline(
        base, {"a/x": 95.0, "a/y": 210.0, "derived.z_per_sec": 49.0}, 0.25)
    expect(not fail and not miss, "healthy record must pass")
    expect(all(r[4] == "ok" for r in rows), "healthy rows all ok")

    # A >threshold drop is a failure naming the metric.
    _, fail, miss = compare_to_baseline(base, {"a/x": 10.0, "a/y": 200.0,
                                               "derived.z_per_sec": 50.0},
                                        0.25)
    expect(len(fail) == 1 and "a/x" in fail[0], "deep drop fails by name")
    expect(not miss, "a present-but-slow metric is not 'missing'")

    # EVERY absent metric is collected — not just the first one hit.
    _, fail, miss = compare_to_baseline(base, {"a/y": 200.0}, 0.25)
    expect(miss == ["a/x", "derived.z_per_sec"],
           "all absent metrics collected in one pass")
    expect(len(fail) == 2, "each absent metric is its own failure")
    line = missing_line(miss)
    expect("(2)" in line and "a/x" in line and "derived.z_per_sec" in line,
           "missing line names every absent metric at once")

    # New metrics in current never fail (forward-compatible records).
    _, fail, miss = compare_to_baseline(
        base, {"a/x": 100.0, "a/y": 200.0, "derived.z_per_sec": 50.0,
               "b/new": 1.0}, 0.25)
    expect(not fail and not miss, "new current-only metrics are informational")

    # A zero (or negative) baseline must never pass silently: it used to
    # map to ratio = inf, which no threshold can fail. It is surfaced as a
    # loud SKIPPED row instead — not a failure, but never an "ok" either.
    rows, fail, miss = compare_to_baseline(
        {"a/x": 0.0, "a/y": 200.0}, {"a/x": 0.0, "a/y": 200.0}, 0.25)
    skipped = [r for r in rows if r[0] == "a/x"]
    expect(len(skipped) == 1 and
           skipped[0][4] == "SKIPPED (non-positive baseline)",
           "zero baseline surfaces as a SKIPPED row")
    expect(skipped[0][3] is None, "zero baseline reports no ratio")
    expect(not fail and not miss,
           "zero baseline is a notice, not a regression failure")
    expect(all(r[4] != "ok" for r in skipped),
           "zero baseline must never read as ok")

    # Floors: below-floor fails, absent fails AND lands in missing,
    # min_hw_threads skips on small hardware.
    record = {"benchmarks": [{"name": "a/x", "items_per_sec": 3.0}],
              "derived": {"speedup": 2.0}, "hw_threads": 4}
    fail2: list[str] = []
    miss2: list[str] = []
    floor_rows = check_floors(
        [{"metric": "derived.speedup", "floor": 4.0},
         {"metric": "derived.gone", "floor": 1.0},
         {"metric": "a/x", "floor": 1.0, "min_hw_threads": 64}],
        record, fail2, miss2)
    expect(len(fail2) == 2, "below-floor + absent floor both fail")
    expect(miss2 == ["derived.gone"], "absent floored metric is missing")
    expect([r[3] for r in floor_rows] == ["BELOW FLOOR", "MISSING", "skipped"],
           "floor row statuses")

    if failures:
        for label in failures:
            sys.stderr.write(f"perf_gate: self-test FAILED: {label}\n")
        return 1
    print("perf_gate: self-test PASS (baseline compare, missing aggregation, "
          "floors)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        help="committed baseline record (BENCH_pr8.json)")
    parser.add_argument("--current",
                        help="fresh micro_perf --json --smoke record")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional drop (default 0.25)")
    parser.add_argument("--floors", default=None,
                        help="JSON list of absolute target floors to enforce "
                             "on the current record")
    parser.add_argument("--report", default=None,
                        help="write a markdown comparison report here")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own unit checks and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        sys.stderr.write("perf_gate: --baseline and --current are required "
                         "(or use --self-test)\n")
        return 2
    if not 0.0 < args.threshold < 1.0:
        sys.stderr.write("perf_gate: --threshold must be in (0, 1)\n")
        return 2
    if os.path.realpath(args.baseline) == os.path.realpath(args.current):
        sys.stderr.write(
            "perf_gate: baseline and current are the same file — a "
            "self-comparison passes vacuously and gates nothing\n")
        return 2

    baseline = throughput_metrics(load_record(args.baseline))
    current_record = load_record(args.current)
    current = throughput_metrics(current_record)

    rows, failures, missing = compare_to_baseline(baseline, current,
                                                  args.threshold)
    for name, base, _cur, _ratio, status in rows:
        if status.startswith("SKIPPED"):
            sys.stderr.write(
                f"perf_gate: NOTICE — {name} skipped: non-positive baseline "
                f"({base:g}); this metric gates NOTHING until a valid "
                f"baseline is recommitted\n")

    floor_rows = []
    if args.floors:
        floor_rows = check_floors(load_floors(args.floors), current_record,
                                  failures, missing)

    verdict = "PASS" if not failures else "FAIL"
    lines = [
        "# perf gate report",
        "",
        f"baseline `{args.baseline}` vs current `{args.current}` — "
        f"budget: {100.0 * args.threshold:.0f}% drop on any `*_per_sec` "
        f"metric — **{verdict}**",
        "",
        "| metric | baseline | current | ratio | status |",
        "|---|---|---|---|---|",
    ]
    for name, base, cur, ratio, status in rows:
        fmt = lambda value: "-" if value is None else f"{value:.3e}"
        ratio_text = "-" if ratio is None else f"{ratio:.3f}"
        lines.append(
            f"| {name} | {fmt(base)} | {fmt(cur)} | {ratio_text} | {status} |")
    if floor_rows:
        lines += [
            "",
            f"Target floors (`{args.floors}`, current "
            f"hw_threads = {current_record.get('hw_threads', 1)}):",
            "",
            "| metric | floor | current | status |",
            "|---|---|---|---|",
        ]
        for name, floor, value, status in floor_rows:
            value_text = "-" if value is None else f"{value:.3f}"
            lines.append(f"| {name} | {floor:.3f} | {value_text} | {status} |")
    report = "\n".join(lines) + "\n"

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report)
    sys.stdout.write(report)

    if failures:
        sys.stderr.write("\nperf_gate: FAIL\n")
        for failure in failures:
            sys.stderr.write(f"  {failure}\n")
        if missing:
            sys.stderr.write(missing_line(missing) + "\n")
        return 1
    sys.stdout.write(f"\nperf_gate: PASS ({len(rows)} metrics, "
                     f"{len(floor_rows)} floors checked)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
