#!/usr/bin/env python3
"""Perf-trajectory regression gate for micro_perf JSON records.

Compares a fresh `micro_perf --json --smoke` record against the committed
baseline (BENCH_pr5.json) and fails when any throughput metric dropped by
more than the threshold (default 25%). Metrics compared:

  * every `benchmarks[].items_per_sec`, keyed by benchmark name;
  * every `derived.*_per_sec` field.

Ratio-style derived fields (speedups) are reported for context but never
gate: they compare two in-record measurements and stay meaningful across
machines, yet small workloads make them noisy.

Caveat the budget is sized for: the committed baseline is a min-of-N
FLOOR recorded on one machine/compiler, while CI runs the gate on shared
runners with both gcc and clang — absolute throughput carries that
cross-machine variance. If the runner fleet shifts enough that healthy
builds breach the budget, recommit a fresh floor (and/or raise
--threshold in ci.yml via PERF_GATE_THRESHOLD); do not delete the gate.

Usage:
  perf_gate.py --baseline BENCH_pr5.json --current BENCH_<tag>.json \
               [--threshold 0.25] [--report perf_gate_report.md]

Exit status: 0 = within budget, 1 = regression (or missing metric),
2 = bad invocation / unreadable record.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_record(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.stderr.write(f"perf_gate: cannot read {path}: {error}\n")
        sys.exit(2)
    if "benchmarks" not in record or "derived" not in record:
        sys.stderr.write(f"perf_gate: {path} is not a micro_perf record\n")
        sys.exit(2)
    return record


def throughput_metrics(record: dict) -> dict[str, float]:
    """All gated metrics of a record: name -> items/sec."""
    metrics: dict[str, float] = {}
    for bench in record["benchmarks"]:
        metrics[bench["name"]] = float(bench["items_per_sec"])
    for key, value in record["derived"].items():
        if key.endswith("_per_sec"):
            metrics[f"derived.{key}"] = float(value)
    return metrics


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline record (BENCH_pr5.json)")
    parser.add_argument("--current", required=True,
                        help="fresh micro_perf --json --smoke record")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional drop (default 0.25)")
    parser.add_argument("--report", default=None,
                        help="write a markdown comparison report here")
    args = parser.parse_args()
    if not 0.0 < args.threshold < 1.0:
        sys.stderr.write("perf_gate: --threshold must be in (0, 1)\n")
        return 2
    if os.path.realpath(args.baseline) == os.path.realpath(args.current):
        sys.stderr.write(
            "perf_gate: baseline and current are the same file — a "
            "self-comparison passes vacuously and gates nothing\n")
        return 2

    baseline = throughput_metrics(load_record(args.baseline))
    current = throughput_metrics(load_record(args.current))

    rows = []  # (name, base, cur, ratio, status)
    failures = []
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            rows.append((name, base, None, None, "MISSING"))
            failures.append(f"{name}: present in baseline, absent in current")
            continue
        cur = current[name]
        ratio = cur / base if base > 0.0 else float("inf")
        ok = ratio >= 1.0 - args.threshold
        rows.append((name, base, cur, ratio, "ok" if ok else "REGRESSED"))
        if not ok:
            failures.append(
                f"{name}: {base:.3e} -> {cur:.3e} "
                f"({100.0 * (1.0 - ratio):.1f}% drop, budget "
                f"{100.0 * args.threshold:.0f}%)")
    for name in sorted(set(current) - set(baseline)):
        rows.append((name, None, current[name], None, "new"))

    verdict = "PASS" if not failures else "FAIL"
    lines = [
        "# perf gate report",
        "",
        f"baseline `{args.baseline}` vs current `{args.current}` — "
        f"budget: {100.0 * args.threshold:.0f}% drop on any `*_per_sec` "
        f"metric — **{verdict}**",
        "",
        "| metric | baseline | current | ratio | status |",
        "|---|---|---|---|---|",
    ]
    for name, base, cur, ratio, status in rows:
        fmt = lambda value: "-" if value is None else f"{value:.3e}"
        ratio_text = "-" if ratio is None else f"{ratio:.3f}"
        lines.append(
            f"| {name} | {fmt(base)} | {fmt(cur)} | {ratio_text} | {status} |")
    report = "\n".join(lines) + "\n"

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report)
    sys.stdout.write(report)

    if failures:
        sys.stderr.write("\nperf_gate: FAIL\n")
        for failure in failures:
            sys.stderr.write(f"  {failure}\n")
        return 1
    sys.stdout.write(f"\nperf_gate: PASS ({len(rows)} metrics checked)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
