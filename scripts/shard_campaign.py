#!/usr/bin/env python3
"""Run a sharded population campaign with N local worker processes.

Spawns N `population_shard` workers (worker i computes the chunks with
id ≡ i mod N), waits for all of them, merges the shard files, and writes
the merged result JSON. With --check it also runs the single-process
reference and byte-compares the two JSON files — the end-to-end proof
that process sharding never perturbs a bit (CI runs exactly this).

All workers and the merge MUST share the spec knobs (--flows/--windows/
--sigma/--seed/--grain/--sample/--round); this script passes one set to
every invocation. Shard headers carry the campaign parameters, so a
mixed-spec merge fails loudly in the binary rather than silently here.

With --progress each worker emits heartbeat lines on stderr and this
script aggregates them into one campaign-wide line per second:

  shard_campaign: progress flows=196/334 (59%) chunks=7/11 eta~12s

Usage:
  shard_campaign.py --binary build/population_shard --workers 4 \
      --flows 200 --outdir /tmp/campaign [--resume] [--check] [--progress]

Exit status: 0 = success (and byte-identical under --check),
1 = worker/merge failure or a --check mismatch, 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import filecmp
import pathlib
import re
import subprocess
import sys
import threading
import time

# One heartbeat line of a --progress worker, e.g.
#   population_shard: progress shard=0/2 chunks=3/11 flows=96/334 eta_s=12.4
PROGRESS_RE = re.compile(
    r"population_shard: progress shard=(\d+)/(\d+) chunks=(\d+)/(\d+) "
    r"flows=(\d+)/(\d+) eta_s=([0-9.]+)"
)


class CampaignProgress:
    """Aggregates per-worker heartbeat lines into campaign-wide totals."""

    def __init__(self, workers: int) -> None:
        self._lock = threading.Lock()
        # worker index -> (chunks_done, chunks_total, flows_done,
        #                  flows_total, eta_s)
        self._state: dict[int, tuple[int, int, int, int, float]] = {}
        self._finished: set[int] = set()
        self._workers = workers
        self._last_print = 0.0

    def consume(self, worker: int, stream) -> None:
        """Reader thread body: parse heartbeats, forward everything else."""
        for raw in iter(stream.readline, b""):
            line = raw.decode("utf-8", errors="replace").rstrip("\n")
            match = PROGRESS_RE.match(line)
            if match is None:
                # Not a heartbeat (e.g. the final "shard i/N done" line):
                # forward it verbatim so worker diagnostics are never eaten.
                print(line, file=sys.stderr)
                continue
            shard_index = int(match.group(1))
            state = (int(match.group(3)), int(match.group(4)),
                     int(match.group(5)), int(match.group(6)),
                     float(match.group(7)))
            with self._lock:
                self._state[shard_index] = state
                self._maybe_print_locked()
        stream.close()
        # Stream EOF = worker process exited: its last heartbeat's ETA is
        # stale (the worker is DONE, not eta_s away from done). Zero it so
        # the campaign max() no longer pins on a finished worker.
        self.finish(worker)

    def finish(self, worker: int) -> None:
        """Mark a worker's process as exited: its ETA no longer counts."""
        with self._lock:
            self._finished.add(worker)
            state = self._state.get(worker)
            if state is not None:
                self._state[worker] = state[:4] + (0.0,)

    def campaign_eta(self) -> float:
        """ETA of the slowest still-running worker (0 when all finished)."""
        with self._lock:
            return self._eta_locked()

    def _eta_locked(self) -> float:
        # The campaign finishes when its SLOWEST *running* worker does;
        # finished workers contribute 0, never their last-seen estimate.
        return max((s[4] for w, s in self._state.items()
                    if w not in self._finished), default=0.0)

    def _maybe_print_locked(self) -> None:
        now = time.monotonic()
        if now - self._last_print < 1.0:
            return
        self._last_print = now
        chunks_done = sum(s[0] for s in self._state.values())
        chunks_total = sum(s[1] for s in self._state.values())
        flows_done = sum(s[2] for s in self._state.values())
        flows_total = sum(s[3] for s in self._state.values())
        eta = self._eta_locked()
        percent = 100 * flows_done // flows_total if flows_total else 0
        print(f"shard_campaign: progress flows={flows_done}/{flows_total} "
              f"({percent}%) chunks={chunks_done}/{chunks_total} "
              f"eta~{eta:.0f}s [{len(self._state)}/{self._workers} workers "
              f"reporting]", file=sys.stderr)


def self_test() -> int:
    """Unit tests for CampaignProgress (run with --self-test; CI runs this)."""
    failures: list[str] = []

    def expect(condition: bool, label: str) -> None:
        if not condition:
            failures.append(label)
            print(f"self-test FAIL: {label}", file=sys.stderr)

    def heartbeat(shard: int, workers: int, chunks: int, chunks_total: int,
                  flows: int, flows_total: int, eta: float) -> bytes:
        return (f"population_shard: progress shard={shard}/{workers} "
                f"chunks={chunks}/{chunks_total} flows={flows}/{flows_total} "
                f"eta_s={eta}\n").encode()

    import io

    # A worker's heartbeats feed the aggregate; its ETA counts while running.
    progress = CampaignProgress(2)
    progress.consume(0, io.BytesIO(heartbeat(0, 2, 3, 11, 96, 334, 12.4)))
    expect(progress.campaign_eta() == 0.0,
           "worker 0 exited (stream EOF) -> its ETA must not linger")

    # The regression: a finished worker's LAST heartbeat must not pin the
    # campaign ETA while a slower worker is still running.
    progress = CampaignProgress(2)
    fast = io.BytesIO(heartbeat(0, 2, 11, 11, 334, 334, 57.0))
    progress.consume(0, fast)           # fast worker heartbeats, then exits
    with progress._lock:                # slow worker still mid-flight
        progress._state[1] = (3, 11, 96, 334, 12.4)
    expect(progress.campaign_eta() == 12.4,
           "campaign ETA must track the running worker, not the stale 57 s "
           "estimate of the finished one")

    # All workers finished: ETA collapses to zero.
    progress.finish(1)
    expect(progress.campaign_eta() == 0.0, "all finished -> eta 0")

    # finish() before any heartbeat (a worker that dies instantly) is safe.
    progress = CampaignProgress(1)
    progress.finish(0)
    expect(progress.campaign_eta() == 0.0, "finish before heartbeat is safe")

    # Non-heartbeat lines are forwarded, not parsed (no crash, no state).
    progress = CampaignProgress(1)
    progress.consume(0, io.BytesIO(b"population_shard: shard 0/1 done\n"))
    expect(not progress._state, "diagnostic lines leave no heartbeat state")

    if failures:
        print(f"shard_campaign --self-test: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("shard_campaign --self-test: all checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the population_shard binary")
    parser.add_argument("--workers", type=int, default=2,
                        help="number of shard worker processes")
    parser.add_argument("--flows", type=int, default=64)
    parser.add_argument("--sample", type=int, default=0,
                        help="sampled mode: simulate only m seed-derived "
                             "flows of M (0 = exhaustive)")
    parser.add_argument("--round", type=int, default=0,
                        help="sampled mode: which disjoint stratum")
    parser.add_argument("--windows", type=int, default=4)
    parser.add_argument("--sigma", type=float, default=0.0,
                        help="VIT timer std-dev in microseconds (0 = CIT)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--grain", type=int, default=0)
    parser.add_argument("--threads", type=int, default=0,
                        help="threads per worker (0 = hardware)")
    parser.add_argument("--outdir", required=True,
                        help="directory for shard files and result JSON")
    parser.add_argument("--resume", action="store_true",
                        help="let workers reuse completed chunks on disk")
    parser.add_argument("--progress", action="store_true",
                        help="aggregate per-worker heartbeats into one "
                             "campaign progress line per second")
    parser.add_argument("--check", action="store_true",
                        help="also run the single-process reference and "
                             "byte-compare the result JSON")
    parser.add_argument("--self-test", action="store_true",
                        help="run the CampaignProgress unit tests and exit")
    if "--self-test" in sys.argv[1:]:
        return self_test()
    args = parser.parse_args()

    if args.workers < 1:
        print("shard_campaign: --workers must be >= 1", file=sys.stderr)
        return 2
    binary = pathlib.Path(args.binary)
    if not binary.exists():
        print(f"shard_campaign: no such binary: {binary}", file=sys.stderr)
        return 2
    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    spec = [
        "--flows", str(args.flows),
        "--sample", str(args.sample),
        "--round", str(getattr(args, "round")),
        "--windows", str(args.windows),
        "--sigma", str(args.sigma),
        "--seed", str(args.seed),
        "--grain", str(args.grain),
    ]

    # Launch every worker, then wait: the whole point is that shards are
    # independent processes with no shared state but the filesystem.
    progress = CampaignProgress(args.workers) if args.progress else None
    readers = []
    shard_files = []
    procs = []
    for i in range(args.workers):
        shard_file = outdir / f"shard_{i}.shard"
        shard_files.append(shard_file)
        cmd = [str(binary), "--shard", f"{i}/{args.workers}",
               "--emit-shard", str(shard_file),
               "--threads", str(args.threads)] + spec
        if args.resume:
            cmd.append("--resume")
        if progress is not None:
            cmd.append("--progress")
            proc = subprocess.Popen(cmd, stderr=subprocess.PIPE)
            reader = threading.Thread(target=progress.consume,
                                      args=(i, proc.stderr), daemon=True)
            reader.start()
            readers.append(reader)
        else:
            proc = subprocess.Popen(cmd)
        procs.append((i, proc))

    failed = False
    for i, proc in procs:
        exit_code = proc.wait()
        if progress is not None:
            # Belt and braces: the reader thread also calls finish() at
            # stream EOF, but the wait() is the authoritative exit signal.
            progress.finish(i)
        if exit_code != 0:
            print(f"shard_campaign: worker {i}/{args.workers} failed "
                  f"(exit {exit_code})", file=sys.stderr)
            failed = True
    for reader in readers:
        reader.join(timeout=5.0)
    if failed:
        return 1

    merged = outdir / "merged.json"
    merge_cmd = [str(binary), "--merge", ",".join(str(p) for p in shard_files),
                 "--out", str(merged)] + spec
    if subprocess.run(merge_cmd).returncode != 0:
        print("shard_campaign: merge failed", file=sys.stderr)
        return 1
    print(f"shard_campaign: merged {args.workers} shards -> {merged}")

    if args.check:
        single = outdir / "single.json"
        run_cmd = [str(binary), "--run", "--out", str(single),
                   "--threads", str(args.threads)] + spec
        if subprocess.run(run_cmd).returncode != 0:
            print("shard_campaign: single-process reference failed",
                  file=sys.stderr)
            return 1
        if not filecmp.cmp(merged, single, shallow=False):
            print(f"shard_campaign: MISMATCH — {merged} differs from {single}; "
                  f"the shard pipeline perturbed the result", file=sys.stderr)
            return 1
        print(f"shard_campaign: byte-identical to the single-process run "
              f"({merged.stat().st_size} bytes)")

    return 0


if __name__ == "__main__":
    sys.exit(main())
